#include "app/ecg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace ulpmc::app {
namespace {

TEST(Ecg, DeterministicPerSeedAndLead) {
    const EcgGenerator g1;
    const EcgGenerator g2;
    EXPECT_EQ(g1.lead(0, 512), g2.lead(0, 512));
    EXPECT_EQ(g1.lead(7, 100), g2.lead(7, 100));
}

TEST(Ecg, LeadsDiffer) {
    const EcgGenerator g;
    EXPECT_NE(g.lead(0, 512), g.lead(1, 512));
}

TEST(Ecg, SeedsDiffer) {
    EcgConfig a;
    a.seed = 1;
    EcgConfig b;
    b.seed = 2;
    EXPECT_NE(EcgGenerator(a).lead(0, 256), EcgGenerator(b).lead(0, 256));
}

TEST(Ecg, SamplesBounded) {
    const EcgGenerator g;
    for (unsigned lead = 0; lead < kEcgLeads; ++lead) {
        for (const auto s : g.lead(lead, 2048)) {
            EXPECT_LE(s, g.config().full_scale);
            EXPECT_GE(s, -g.config().full_scale);
        }
    }
}

TEST(Ecg, BlockHasPaperSize) { EXPECT_EQ(EcgGenerator().block(3).size(), 512u); }

TEST(Ecg, ContainsQrsPeaks) {
    // At 72 bpm and 250 Hz, a 512-sample block (~2 s) spans >= 2 beats;
    // the R peaks must stand far above the baseline.
    const EcgGenerator g;
    const auto x = g.block(0);
    const auto maxv = *std::max_element(x.begin(), x.end());
    EXPECT_GT(maxv, g.config().full_scale / 2);
    // Count prominent peaks: samples above 60% of max with local maximality.
    int peaks = 0;
    for (std::size_t i = 1; i + 1 < x.size(); ++i)
        if (x[i] > 0.6 * maxv && x[i] >= x[i - 1] && x[i] >= x[i + 1]) ++peaks;
    EXPECT_GE(peaks, 2);
    EXPECT_LE(peaks, 8);
}

TEST(Ecg, BeatPeriodicityRoughlyMatchesHeartRate) {
    const EcgGenerator g;
    const auto x = g.lead(2, 2500); // 10 s
    const auto maxv = *std::max_element(x.begin(), x.end());
    std::vector<std::size_t> peak_at;
    for (std::size_t i = 1; i + 1 < x.size(); ++i) {
        if (x[i] > 0.7 * maxv && x[i] >= x[i - 1] && x[i] >= x[i + 1]) {
            if (peak_at.empty() || i - peak_at.back() > 50) peak_at.push_back(i);
        }
    }
    ASSERT_GE(peak_at.size(), 8u); // ~12 beats in 10 s at 72 bpm
    const double mean_rr = static_cast<double>(peak_at.back() - peak_at.front()) /
                           static_cast<double>(peak_at.size() - 1);
    EXPECT_NEAR(mean_rr / kEcgSampleRateHz, 60.0 / 72.0, 0.05);
}

TEST(Ecg, InvertedLeadHasNegativePolarity) {
    // Leads 3 and 6 model aVR-like electrode projections.
    const EcgGenerator g;
    const auto x = g.block(3);
    const auto minv = *std::min_element(x.begin(), x.end());
    const auto maxv = *std::max_element(x.begin(), x.end());
    EXPECT_GT(-minv, maxv); // dominant deflection points down
}

TEST(Ecg, NonZeroMeanAbsAmplitude) {
    const EcgGenerator g;
    const auto x = g.block(1);
    const double mean_abs =
        std::accumulate(x.begin(), x.end(), 0.0,
                        [](double acc, std::int16_t v) { return acc + std::abs(v); }) /
        static_cast<double>(x.size());
    EXPECT_GT(mean_abs, 5.0);
}

TEST(Ecg, ConfigValidation) {
    EcgConfig bad;
    bad.heart_rate_bpm = 0;
    EXPECT_THROW(EcgGenerator{bad}, contract_violation);
    EcgConfig bad2;
    bad2.full_scale = 0;
    EXPECT_THROW(EcgGenerator{bad2}, contract_violation);
    EXPECT_THROW(EcgGenerator().lead(kEcgLeads, 1), contract_violation);
}

} // namespace
} // namespace ulpmc::app
