#include "app/rpeak.hpp"

#include <gtest/gtest.h>

#include "app/ecg.hpp"
#include "common/assert.hpp"
#include "cluster/cluster.hpp"
#include "core/functional_core.hpp"

namespace ulpmc::app {
namespace {

std::vector<Word> run_kernel_on_iss(std::span<const std::int16_t> x) {
    const auto prog = build_rpeak_program();
    core::FlatMemory mem(1024);
    for (std::size_t i = 0; i < x.size(); ++i)
        mem.poke(static_cast<Addr>(RpeakLayout::kXBase + i), static_cast<Word>(x[i]));
    core::FunctionalCore core(prog.text, mem);
    core.state().pc = prog.entry;
    core.run();
    EXPECT_EQ(core.trap(), core::Trap::None);
    EXPECT_TRUE(core.halted());

    const Word count = mem.peek(RpeakLayout::kOutCount);
    std::vector<Word> peaks;
    for (Word i = 0; i < count; ++i)
        peaks.push_back(mem.peek(static_cast<Addr>(RpeakLayout::kOutIdx + i)));
    return peaks;
}

TEST(Rpeak, KernelMatchesGoldenOnEveryLead) {
    const EcgGenerator gen;
    for (unsigned lead = 0; lead < kEcgLeads; ++lead) {
        const auto x = gen.block(lead);
        EXPECT_EQ(run_kernel_on_iss(x), rpeak_detect(x)) << "lead " << lead;
    }
}

TEST(Rpeak, DetectsTheActualHeartbeats) {
    // 72 bpm at 250 Hz: beats every ~208 samples; a 512-sample block holds
    // 2-3 QRS complexes. The detector must find each once.
    const EcgGenerator gen;
    const auto x = gen.block(0);
    const auto peaks = rpeak_detect(x);
    ASSERT_GE(peaks.size(), 2u);
    ASSERT_LE(peaks.size(), 3u);
    // Consecutive peak spacing matches the heart rate.
    for (std::size_t i = 1; i < peaks.size(); ++i) {
        const double rr = static_cast<double>(peaks[i] - peaks[i - 1]);
        EXPECT_NEAR(rr / kEcgSampleRateHz, 60.0 / 72.0, 0.08) << i;
    }
}

TEST(Rpeak, RobustToInvertedLead) {
    // Lead 3 has negative polarity; squaring makes the detector agnostic.
    const EcgGenerator gen;
    const auto peaks = rpeak_detect(gen.block(3));
    EXPECT_GE(peaks.size(), 2u);
    EXPECT_LE(peaks.size(), 3u);
}

TEST(Rpeak, SilenceYieldsNoPeaks) {
    std::vector<std::int16_t> flat(512, 5);
    EXPECT_TRUE(rpeak_detect(flat).empty());
}

TEST(Rpeak, SmallNoiseStaysBelowFloor) {
    std::vector<std::int16_t> x(512);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<std::int16_t>((i % 3) - 1);
    EXPECT_TRUE(rpeak_detect(x).empty());
}

TEST(Rpeak, RefractoryPreventsDoubleCounting) {
    // A single huge impulse excites the window for ~16 samples; without
    // the refractory it would fire repeatedly.
    std::vector<std::int16_t> x(512, 0);
    for (int k = 0; k < 6; ++k) x[200 + k] = static_cast<std::int16_t>(400 - 60 * k);
    const auto peaks = rpeak_detect(x);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_NEAR(peaks[0], 201.0, 4.0);
}

TEST(Rpeak, RunsOnAllClusterArchitectures) {
    const EcgGenerator gen;
    const auto prog = build_rpeak_program();
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        cluster::Cluster cl(cluster::make_config(arch, RpeakLayout::dm_layout()), prog);
        for (unsigned p = 0; p < kNumCores; ++p) {
            const auto x = gen.block(p);
            for (std::size_t i = 0; i < x.size(); ++i)
                cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(RpeakLayout::kXBase + i),
                           static_cast<Word>(x[i]));
        }
        cl.run();
        for (unsigned p = 0; p < kNumCores; ++p) {
            ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
            const auto golden = rpeak_detect(gen.block(p));
            ASSERT_EQ(cl.dm_peek(static_cast<CoreId>(p), RpeakLayout::kOutCount), golden.size())
                << cluster::arch_name(arch) << " core " << p;
            for (std::size_t i = 0; i < golden.size(); ++i) {
                EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p),
                                     static_cast<Addr>(RpeakLayout::kOutIdx + i)),
                          golden[i]);
            }
        }
    }
}

TEST(Rpeak, BranchyWorkloadDesynchronizesCoresHarderThanCs) {
    // Three data-dependent branches per sample: the banked IM organization
    // pays visibly more than on the mostly-lockstep CS benchmark.
    const EcgGenerator gen;
    const auto prog = build_rpeak_program();
    cluster::ClusterStats bank;
    cluster::ClusterStats inter;
    for (const auto arch : {cluster::ArchKind::UlpmcInt, cluster::ArchKind::UlpmcBank}) {
        cluster::Cluster cl(cluster::make_config(arch, RpeakLayout::dm_layout()), prog);
        for (unsigned p = 0; p < kNumCores; ++p) {
            const auto x = gen.block(p);
            for (std::size_t i = 0; i < x.size(); ++i)
                cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(RpeakLayout::kXBase + i),
                           static_cast<Word>(x[i]));
        }
        cl.run();
        (arch == cluster::ArchKind::UlpmcBank ? bank : inter) = cl.stats();
    }
    EXPECT_GT(bank.cycles, inter.cycles);
}

TEST(Rpeak, ParameterValidation) {
    RpeakParams p;
    p.window = 12; // not a power of two
    std::vector<std::int16_t> x(64, 0);
    EXPECT_THROW(rpeak_detect(x, p), contract_violation);
    RpeakParams q;
    q.window = 8; // kernel requires 16
    EXPECT_THROW(build_rpeak_program(q), contract_violation);
}

} // namespace
} // namespace ulpmc::app
