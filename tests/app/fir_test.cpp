#include "app/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "app/ecg.hpp"
#include "cluster/cluster.hpp"
#include "common/assert.hpp"
#include "core/functional_core.hpp"

namespace ulpmc::app {
namespace {

std::vector<Word> run_kernel(const FirKernel& k, std::span<const std::int16_t> x) {
    const auto prog = k.build_program(x.size());
    core::FlatMemory mem(FirLayout::dm_layout().limit());
    mem.load(0, prog.data);
    for (std::size_t i = 0; i < x.size(); ++i)
        mem.poke(static_cast<Addr>(FirLayout::kXBase + i), static_cast<Word>(x[i]));
    core::FunctionalCore core(prog.text, mem);
    core.state().pc = prog.entry;
    core.run();
    EXPECT_EQ(core.trap(), core::Trap::None);
    std::vector<Word> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = mem.peek(static_cast<Addr>(FirLayout::kYBase + i));
    return y;
}

TEST(Fir, KernelMatchesGoldenOnEcg) {
    const EcgGenerator gen;
    const auto x = gen.block(0);
    for (const unsigned taps : {1u, 4u, 8u, 16u}) {
        const auto k = FirKernel::moving_average(taps);
        EXPECT_EQ(run_kernel(k, x), k.apply(x)) << taps << " taps";
    }
}

TEST(Fir, KernelMatchesGoldenWithArbitraryCoefficients) {
    const EcgGenerator gen;
    const auto x = gen.block(5);
    const FirKernel k({12000, -4000, 700, -30000, 32767});
    EXPECT_EQ(run_kernel(k, x), k.apply(x));
}

TEST(Fir, SingleTapIsHalfGain) {
    // Q16 convention: one tap of 32767 is a gain of 32767/65536 ~= 0.5
    // (plus the per-term truncation toward -inf).
    const EcgGenerator gen;
    const auto x = gen.block(1);
    const auto y = FirKernel({32767}).apply(x);
    for (std::size_t n = 0; n < x.size(); ++n) {
        const auto yy = static_cast<SWord>(y[n]);
        EXPECT_NEAR(yy, x[n] * 0.5, std::abs(x[n]) * 0.01 + 1.5) << n;
    }
}

TEST(Fir, MovingAverageSmooths) {
    // High-frequency noise energy must drop; the slow wave must survive.
    std::vector<std::int16_t> x(512);
    for (std::size_t n = 0; n < x.size(); ++n) {
        x[n] = static_cast<std::int16_t>(200.0 * std::sin(2 * 3.14159 * n / 128.0) +
                                         ((n & 1) ? 50 : -50)); // Nyquist noise
    }
    const auto k = FirKernel::moving_average(8);
    const auto y = k.apply(x);
    // Alternating-sample energy after the filter:
    double rough_in = 0;
    double rough_out = 0;
    for (std::size_t n = 65; n < 500; ++n) {
        rough_in += std::abs(x[n] - x[n - 1]);
        rough_out += std::abs(static_cast<SWord>(y[n]) - static_cast<SWord>(y[n - 1]));
    }
    EXPECT_LT(rough_out, 0.25 * rough_in);
    // DC gain ~1: mid-band amplitude preserved within ~20%.
    double max_out = 0;
    for (std::size_t n = 64; n < 500; ++n)
        max_out = std::max(max_out, std::fabs(static_cast<double>(static_cast<SWord>(y[n]))));
    EXPECT_GT(max_out, 120.0);
    EXPECT_LT(max_out, 240.0);
}

TEST(Fir, FirstOutputsAreZeroHistory) {
    const auto k = FirKernel::moving_average(8);
    std::vector<std::int16_t> x(32, 100);
    const auto y = k.apply(x);
    for (std::size_t n = 0; n < 7; ++n) EXPECT_EQ(y[n], 0u);
    EXPECT_NE(y[7], 0u);
}

TEST(Fir, RunsOnTheCluster) {
    const EcgGenerator gen;
    const auto k = FirKernel::moving_average(8);
    const auto prog = k.build_program(512);
    cluster::Cluster cl(cluster::make_config(cluster::ArchKind::UlpmcBank, FirLayout::dm_layout()),
                        prog);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto x = gen.block(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(FirLayout::kXBase + i),
                       static_cast<Word>(x[i]));
    }
    cl.run();
    for (unsigned p = 0; p < kNumCores; ++p) {
        ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
        const auto golden = k.apply(gen.block(p));
        for (std::size_t i = 0; i < golden.size(); i += 31)
            EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(FirLayout::kYBase + i)),
                      golden[i]);
    }
}

TEST(Fir, Validation) {
    EXPECT_THROW(FirKernel({}), contract_violation);
    EXPECT_THROW(FirKernel::moving_average(0), contract_violation);
    EXPECT_THROW(FirKernel::moving_average(65), contract_violation);
    const auto k = FirKernel::moving_average(8);
    EXPECT_THROW(k.build_program(4), contract_violation);    // fewer than taps
    EXPECT_THROW(k.build_program(2000), contract_violation); // beyond buffer
}

} // namespace
} // namespace ulpmc::app
