// SEC-DED layer property tests (DESIGN.md §9): every single-bit upset in
// a protected cell is corrected, every double-bit upset is detected, and
// the bank-level read path counts/corrects/scrubs exactly as documented.
#include <gtest/gtest.h>

#include "mem/memory_bank.hpp"

namespace ulpmc::mem {
namespace {

TEST(Ecc, CorrectsEverySingleBitFlip) {
    for (const unsigned bits : {16u, 24u, 26u}) {
        const std::uint32_t patterns[] = {0u, 1u, 0xA5A5u & ((1u << bits) - 1),
                                          (1u << bits) - 1, 0x00F0Fu & ((1u << bits) - 1)};
        for (const std::uint32_t data : patterns) {
            const std::uint8_t check = ecc::encode(data, bits);
            for (unsigned b = 0; b < bits; ++b) {
                const auto d = ecc::check(data ^ (1u << b), check, bits);
                EXPECT_TRUE(d.had_error);
                EXPECT_FALSE(d.uncorrectable);
                EXPECT_EQ(d.corrected, data) << "bits=" << bits << " bit=" << b;
            }
        }
    }
}

TEST(Ecc, CleanWordPassesUntouched) {
    for (const unsigned bits : {16u, 24u}) {
        const std::uint32_t data = 0x5A5Au & ((1u << bits) - 1);
        const auto d = ecc::check(data, ecc::encode(data, bits), bits);
        EXPECT_FALSE(d.had_error);
        EXPECT_FALSE(d.uncorrectable);
        EXPECT_EQ(d.corrected, data);
    }
}

TEST(Ecc, DetectsEveryDoubleBitFlip) {
    const unsigned bits = 16;
    const std::uint32_t data = 0x1234;
    const std::uint8_t check = ecc::encode(data, bits);
    for (unsigned a = 0; a < bits; ++a) {
        for (unsigned b = a + 1; b < bits; ++b) {
            const auto d = ecc::check(data ^ (1u << a) ^ (1u << b), check, bits);
            EXPECT_TRUE(d.had_error);
            EXPECT_TRUE(d.uncorrectable) << "bits " << a << "," << b;
        }
    }
}

TEST(EccBank, ReadCorrectsCountsAndScrubs) {
    MemoryBank bank(8, 16);
    bank.set_ecc(true);
    bank.write(3, 0xBEEF);
    bank.corrupt(3, 0x0100);

    EXPECT_EQ(bank.read(3), 0xBEEFu); // corrected in flight
    EXPECT_EQ(bank.stats().ecc_corrected, 1u);
    EXPECT_EQ(bank.stats().faults_injected, 1u);
    EXPECT_FALSE(bank.take_uncorrectable());

    EXPECT_EQ(bank.read(3), 0xBEEFu); // scrub wrote the fix back
    EXPECT_EQ(bank.stats().ecc_corrected, 1u) << "second read must not correct again";
}

TEST(EccBank, PeekReturnsCorrectedViewWithoutCounting) {
    MemoryBank bank(4, 16);
    bank.set_ecc(true);
    bank.write(0, 0x00FF);
    bank.corrupt(0, 0x8000);
    EXPECT_EQ(bank.peek(0), 0x00FFu);
    EXPECT_EQ(bank.stats().ecc_corrected, 0u);
    EXPECT_EQ(bank.stats().reads, 0u);
}

TEST(EccBank, DoubleBitUpsetRaisesStickyFlag) {
    MemoryBank bank(4, 16);
    bank.set_ecc(true);
    bank.write(1, 0x0F0F);
    bank.corrupt(1, 0x0011);
    bank.read(1);
    EXPECT_EQ(bank.stats().ecc_uncorrectable, 1u);
    EXPECT_TRUE(bank.take_uncorrectable());
    EXPECT_FALSE(bank.take_uncorrectable()) << "flag is take-once";
}

TEST(EccBank, WithoutEccFlipsReadBackRaw) {
    MemoryBank bank(4, 16);
    bank.write(2, 0x1111);
    bank.corrupt(2, 0x0022);
    EXPECT_EQ(bank.read(2), 0x1111u ^ 0x0022u);
    EXPECT_EQ(bank.stats().ecc_corrected, 0u);
}

} // namespace
} // namespace ulpmc::mem
