#include "mem/memory_bank.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::mem {
namespace {

TEST(MemoryBank, ReadWriteAndCounters) {
    MemoryBank b(8, 16);
    b.write(2, 0xABCD);
    EXPECT_EQ(b.read(2), 0xABCDu);
    EXPECT_EQ(b.stats().reads, 1u);
    EXPECT_EQ(b.stats().writes, 1u);
    EXPECT_EQ(b.stats().accesses(), 2u);
}

TEST(MemoryBank, PeekPokeDoNotCount) {
    MemoryBank b(8, 16);
    b.poke(1, 42);
    EXPECT_EQ(b.peek(1), 42u);
    EXPECT_EQ(b.stats().accesses(), 0u);
}

TEST(MemoryBank, ResetStats) {
    MemoryBank b(8, 16);
    b.write(0, 1);
    b.reset_stats();
    EXPECT_EQ(b.stats().accesses(), 0u);
}

TEST(MemoryBank, OutOfRangeIsContractViolation) {
    MemoryBank b(8, 16);
    EXPECT_THROW(b.read(8), contract_violation);
    EXPECT_THROW(b.write(8, 0), contract_violation);
    EXPECT_THROW(b.peek(8), contract_violation);
}

TEST(MemoryBank, GatingBlocksAccess) {
    MemoryBank b(8, 24);
    b.poke(0, 7);
    b.set_power_gated(true);
    EXPECT_TRUE(b.power_gated());
    EXPECT_THROW(b.read(0), contract_violation);
    EXPECT_THROW(b.write(0, 1), contract_violation);
    EXPECT_THROW(b.poke(0, 1), contract_violation);
}

TEST(MemoryBank, GatingWipesContents) {
    // Power gating is not state-retentive: contents must not survive so
    // a stale-read bug is loud.
    MemoryBank b(4, 16);
    b.poke(0, 0x1234);
    b.set_power_gated(true);
    b.set_power_gated(false);
    EXPECT_NE(b.peek(0), 0x1234u);
}

TEST(MemoryBank, CellBitsBookkeeping) {
    MemoryBank im(kImWordsPerBank, 24);
    MemoryBank dm(kDmWordsPerBank, 16);
    EXPECT_EQ(im.cell_bits(), 24u);
    EXPECT_EQ(dm.cell_bits(), 16u);
    EXPECT_EQ(im.size(), 4096u);
    EXPECT_EQ(dm.size(), 2048u);
}

TEST(MemoryBank, InvalidConstruction) {
    EXPECT_THROW(MemoryBank(0, 16), contract_violation);
    EXPECT_THROW(MemoryBank(8, 0), contract_violation);
    EXPECT_THROW(MemoryBank(8, 33), contract_violation);
}

} // namespace
} // namespace ulpmc::mem
