// SweepRunner: deterministic input-order results, thread-count
// equivalence, exception propagation, and the degenerate cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "cluster/config.hpp"
#include "isa/assembler.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc {
namespace {

isa::Program test_program() {
    return isa::assemble(R"(
            movi r1, 512
            movi r2, 50
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
}

std::vector<sweep::SweepPoint> test_points() {
    const mmu::DmLayout layout{.shared_words = 512, .private_words_per_core = 2048};
    std::vector<sweep::SweepPoint> points;
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        sweep::SweepPoint pt;
        pt.label = cluster::arch_name(arch);
        pt.cfg = cluster::make_config(arch, layout);
        pt.max_cycles = 100'000;
        points.push_back(std::move(pt));
    }
    return points;
}

TEST(SweepRunner, ThreadsAccessorCountsCaller) {
    sweep::SweepRunner one(1);
    EXPECT_EQ(one.threads(), 1u); // no pool threads: sequential reference
    sweep::SweepRunner four(4);
    EXPECT_EQ(four.threads(), 4u);
}

TEST(SweepRunner, ForEachIndexCoversEveryIndexExactlyOnce) {
    sweep::SweepRunner pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, MapPreservesInputOrder) {
    std::vector<int> items(100);
    std::iota(items.begin(), items.end(), 0);
    sweep::SweepRunner pool(4);
    const auto out =
        pool.map(std::span<const int>(items), [](const int& v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, EmptyBatchIsANoOp) {
    sweep::SweepRunner pool(2);
    int calls = 0;
    pool.for_each_index(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    const auto out = pool.run(test_program(), {});
    EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, ExceptionPropagatesAfterBatchDrains) {
    sweep::SweepRunner pool(2);
    EXPECT_THROW(pool.for_each_index(
                     16, [](std::size_t i) {
                         if (i == 7) throw std::runtime_error("point 7 failed");
                     }),
                 std::runtime_error);
    // The pool must still be usable after a failed batch.
    std::atomic<int> n{0};
    pool.for_each_index(8, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
}

TEST(SweepRunner, RunMatchesSequentialReference) {
    const auto prog = test_program();
    const auto points = test_points();
    sweep::SweepRunner sequential(1);
    sweep::SweepRunner parallel(4);
    const auto ref = sequential.run(prog, points);
    const auto par = parallel.run(prog, points);
    ASSERT_EQ(ref.size(), points.size());
    ASSERT_EQ(par.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        // Input order preserved regardless of which thread ran the point.
        EXPECT_EQ(ref[i].label, points[i].label);
        EXPECT_EQ(par[i].label, ref[i].label);
        EXPECT_EQ(par[i].cycles, ref[i].cycles);
        EXPECT_EQ(par[i].all_halted, ref[i].all_halted);
        EXPECT_TRUE(ref[i].all_halted);
        EXPECT_EQ(par[i].stats, ref[i].stats);
        ASSERT_EQ(par[i].final_states.size(), ref[i].final_states.size());
        for (std::size_t p = 0; p < ref[i].final_states.size(); ++p)
            EXPECT_EQ(par[i].final_states[p], ref[i].final_states[p]);
    }
}

} // namespace
} // namespace ulpmc
