#include "xbar/crossbar.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ulpmc::xbar {
namespace {

Request rd(BankId bank, std::uint32_t off) { return {true, false, bank, off}; }
Request wr(BankId bank, std::uint32_t off) { return {true, true, bank, off}; }

TEST(Crossbar, DistinctBanksAllGranted) {
    Crossbar xb(4, 8, true);
    const std::vector<Request> reqs = {rd(0, 1), rd(1, 1), wr(2, 5), rd(3, 0)};
    const auto g = xb.arbitrate(reqs, 0);
    for (const auto& gr : g) EXPECT_TRUE(gr.granted);
    EXPECT_EQ(xb.stats().bank_accesses, 4u);
    EXPECT_EQ(xb.stats().denied, 0u);
}

TEST(Crossbar, SameBankDifferentAddressSerializes) {
    Crossbar xb(2, 4, true);
    const std::vector<Request> reqs = {rd(1, 0), rd(1, 7)};
    const auto g = xb.arbitrate(reqs, 0);
    EXPECT_NE(g[0].granted, g[1].granted); // exactly one wins
    EXPECT_EQ(xb.stats().denied, 1u);
    EXPECT_EQ(xb.stats().conflict_cycles, 1u);
}

TEST(Crossbar, BroadcastMergesSameAddressReads) {
    Crossbar xb(8, 4, true);
    std::vector<Request> reqs(8, rd(2, 13));
    const auto g = xb.arbitrate(reqs, 0);
    unsigned riders = 0;
    for (const auto& gr : g) {
        EXPECT_TRUE(gr.granted);
        riders += gr.broadcast;
    }
    EXPECT_EQ(riders, 7u);              // one owner, seven riders
    EXPECT_EQ(xb.stats().bank_accesses, 1u); // single physical access
    EXPECT_EQ(xb.stats().broadcast_riders, 7u);
}

TEST(Crossbar, BroadcastDisabledSerializesSameAddress) {
    Crossbar xb(8, 4, false); // mc-ref style interconnect
    std::vector<Request> reqs(8, rd(2, 13));
    const auto g = xb.arbitrate(reqs, 0);
    unsigned granted = 0;
    for (const auto& gr : g) granted += gr.granted;
    EXPECT_EQ(granted, 1u);
    EXPECT_EQ(xb.stats().denied, 7u);
}

TEST(Crossbar, WritesNeverBroadcast) {
    Crossbar xb(2, 4, true);
    const std::vector<Request> reqs = {wr(1, 3), wr(1, 3)};
    const auto g = xb.arbitrate(reqs, 0);
    EXPECT_NE(g[0].granted, g[1].granted);
}

TEST(Crossbar, ReadDoesNotRideOnWriteWinner) {
    Crossbar xb(2, 4, true);
    // Writer wins the bank at cycle 0 (priority head = master 0).
    const std::vector<Request> reqs = {wr(1, 3), rd(1, 3)};
    const auto g = xb.arbitrate(reqs, 0);
    EXPECT_TRUE(g[0].granted);
    EXPECT_FALSE(g[1].granted);
}

TEST(Crossbar, InactiveRequestsIgnored) {
    Crossbar xb(3, 4, true);
    std::vector<Request> reqs(3);
    reqs[1] = rd(0, 0);
    const auto g = xb.arbitrate(reqs, 0);
    EXPECT_FALSE(g[0].granted);
    EXPECT_TRUE(g[1].granted);
    EXPECT_FALSE(g[2].granted);
    EXPECT_EQ(xb.stats().requests, 1u);
}

TEST(Crossbar, RotatingPriorityIsFairOverTime) {
    // Two masters fight for one bank forever; over 1000 cycles each must
    // win ~half the grants (round-robin fairness, paper §III-B).
    Crossbar xb(2, 1, false);
    std::array<unsigned, 2> wins{};
    for (Cycle c = 0; c < 1000; ++c) {
        const std::vector<Request> reqs = {rd(0, 0), rd(0, 1)};
        const auto g = xb.arbitrate(reqs, c);
        wins[0] += g[0].granted;
        wins[1] += g[1].granted;
    }
    EXPECT_EQ(wins[0], 500u);
    EXPECT_EQ(wins[1], 500u);
}

TEST(Crossbar, EveryActiveRequesterEventuallyWins) {
    // Property: with N masters on one bank, any master waits at most N
    // cycles (the rotating head passes everyone).
    constexpr unsigned kMasters = 8;
    Crossbar xb(kMasters, 1, false);
    std::array<Cycle, kMasters> last_win{};
    for (Cycle c = 0; c < 200; ++c) {
        std::vector<Request> reqs(kMasters, rd(0, 0));
        for (unsigned m = 0; m < kMasters; ++m) reqs[m].offset = m;
        const auto g = xb.arbitrate(reqs, c);
        for (unsigned m = 0; m < kMasters; ++m)
            if (g[m].granted) last_win[m] = c;
    }
    for (unsigned m = 0; m < kMasters; ++m) EXPECT_GE(last_win[m] + kMasters, 199u);
}

TEST(Crossbar, ExactlyOneNonRiderGrantPerBankProperty) {
    // Randomized invariant sweep: per cycle and bank, at most one granted
    // request is a physical access; riders only on identical read offsets.
    Rng rng(5);
    Crossbar xb(8, 4, true);
    for (Cycle c = 0; c < 2000; ++c) {
        std::vector<Request> reqs(8);
        for (auto& r : reqs) {
            r.active = rng.below(4) != 0;
            r.is_write = rng.below(4) == 0;
            r.bank = static_cast<BankId>(rng.below(4));
            r.offset = rng.below(3);
        }
        const auto g = xb.arbitrate(reqs, c);
        std::array<int, 4> owners{};
        for (unsigned m = 0; m < 8; ++m) {
            if (!g[m].granted) continue;
            if (!g[m].broadcast) ++owners[reqs[m].bank];
            if (g[m].broadcast) EXPECT_FALSE(reqs[m].is_write);
        }
        for (const int o : owners) EXPECT_LE(o, 1);
        // Riders must match their bank owner's offset.
        for (unsigned m = 0; m < 8; ++m) {
            if (!g[m].granted || !g[m].broadcast) continue;
            bool matched = false;
            for (unsigned w = 0; w < 8; ++w) {
                if (w == m || !g[w].granted || g[w].broadcast) continue;
                if (reqs[w].bank == reqs[m].bank && reqs[w].offset == reqs[m].offset &&
                    !reqs[w].is_write)
                    matched = true;
            }
            EXPECT_TRUE(matched);
        }
    }
}

TEST(Crossbar, StatsAccumulate) {
    Crossbar xb(2, 2, true);
    const std::vector<Request> reqs = {rd(0, 0), rd(0, 0)};
    (void)xb.arbitrate(reqs, 0);
    (void)xb.arbitrate(reqs, 1);
    EXPECT_EQ(xb.stats().requests, 4u);
    EXPECT_EQ(xb.stats().grants, 4u);
    EXPECT_EQ(xb.stats().bank_accesses, 2u);
    xb.reset_stats();
    EXPECT_EQ(xb.stats().requests, 0u);
}

TEST(Crossbar, WrongArityIsContractViolation) {
    Crossbar xb(2, 2, true);
    const std::vector<Request> reqs = {rd(0, 0)};
    EXPECT_THROW(xb.arbitrate(reqs, 0), contract_violation);
}

TEST(Crossbar, BankOutOfRangeIsContractViolation) {
    Crossbar xb(1, 2, true);
    const std::vector<Request> reqs = {rd(5, 0)};
    EXPECT_THROW(xb.arbitrate(reqs, 0), contract_violation);
}

TEST(MotLevels, PowersOfTwo) {
    EXPECT_EQ(mot_levels(1), 0u);
    EXPECT_EQ(mot_levels(2), 1u);
    EXPECT_EQ(mot_levels(8), 3u);
    EXPECT_EQ(mot_levels(16), 4u);
    EXPECT_EQ(mot_levels(9), 4u);
}

} // namespace
} // namespace ulpmc::xbar
