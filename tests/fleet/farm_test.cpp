// Fault-tolerant farm (DESIGN.md §13 "Farming"): seeded chaos schedules
// are deterministic and land before shard completion, restart backoff
// mirrors the BleLink discipline, the incremental journal scan tolerates
// mid-append tails and counts re-simulated devices, merge_stores rebuilds
// the unsharded artifact byte-for-byte from shard stores, and a real
// supervised run — worker processes, chaos kill, resume — converges to
// the in-process reference with no journaled device re-simulated.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/journal.hpp"
#include "common/rng.hpp"
#include "fleet/farm.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "fleet/store.hpp"
#include "scenario/timeline.hpp"

namespace ulpmc::fleet {
namespace {

constexpr char kTimeline[] = R"(
block_period_s 2.0
battery_j 0.006
phase clean     60 harvest_uw=50
phase radiation 60 lambda=2e-7 ble_loss=0.05 harvest_uw=50
phase drought   60 ble=down harvest_uw=150
phase recovery  60 ble_loss=0.01 harvest_uw=400
)";

class FarmTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (std::filesystem::temp_directory_path() /
                ("ulpmc_farm_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                   .string();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        timeline_path_ = dir_ + "/timeline.txt";
        std::ofstream(timeline_path_) << kTimeline;
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    FarmOptions base_options() const {
        FarmOptions opt;
        opt.fleet.seed = 11;
        opt.fleet.devices = 12;
        opt.fleet.cohorts = 2;
        opt.workers = 2;
        opt.worker_threads = 2;
        opt.timeline_path = timeline_path_;
        opt.fleet_bin = ULPMC_FLEET_BIN;
        opt.dir = dir_ + "/farm";
        // Test-scale supervision constants: fast polls, quick recovery.
        opt.heartbeat_s = 0.05;
        opt.timeout_s = 5.0;
        opt.term_grace_s = 0.5;
        opt.backoff_base_s = 0.02;
        opt.backoff_max_s = 0.1;
        opt.poll_s = 0.01;
        return opt;
    }

    std::string dir_;
    std::string timeline_path_;
};

TEST_F(FarmTest, ChaosScheduleIsDeterministicAndLandsBeforeCompletion) {
    FarmOptions opt = base_options();
    opt.fleet.devices = 100;
    opt.workers = 4;
    opt.chaos_kills = 6;
    opt.chaos_stalls = 3;
    opt.chaos_seed = 42;
    const std::vector<ChaosEvent> a = chaos_schedule(opt);
    const std::vector<ChaosEvent> b = chaos_schedule(opt);
    ASSERT_EQ(a.size(), 9u);
    ASSERT_EQ(b.size(), a.size());
    std::size_t stalls = 0;
    std::vector<std::uint64_t> last(opt.workers, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].shard, b[i].shard);
        EXPECT_EQ(a[i].at_records, b[i].at_records);
        EXPECT_EQ(a[i].stall, b[i].stall);
        EXPECT_LT(a[i].shard, opt.workers);
        EXPECT_GE(a[i].at_records, 1u);
        // Per-shard triggers strictly increase (the schedule is sorted by
        // shard, so consecutive same-shard entries are adjacent).
        EXPECT_GT(a[i].at_records, last[a[i].shard]) << "event " << i;
        last[a[i].shard] = a[i].at_records;
        if (a[i].stall) ++stalls;
    }
    EXPECT_EQ(stalls, opt.chaos_stalls);
    FarmOptions other = opt;
    other.chaos_seed = 43;
    const std::vector<ChaosEvent> c = chaos_schedule(other);
    bool same = c.size() == a.size();
    for (std::size_t i = 0; same && i < a.size(); ++i)
        same = c[i].shard == a[i].shard && c[i].at_records == a[i].at_records;
    EXPECT_FALSE(same) << "a different seed must produce a different schedule";
}

TEST_F(FarmTest, BackoffMirrorsTheBleLinkDiscipline) {
    Rng rng(7);
    double prev_nominal = 0;
    for (unsigned restart = 1; restart <= 20; ++restart) {
        Rng probe = rng; // farm_backoff_s consumes one uniform draw
        const double jitter = 0.75 + 0.5 * probe.uniform();
        const unsigned exp = std::min(restart - 1, 16u);
        const double nominal = std::min(0.8, 0.05 * static_cast<double>(1u << exp));
        const double got = farm_backoff_s(0.05, 0.8, restart, rng);
        EXPECT_DOUBLE_EQ(got, std::min(nominal * jitter, 0.8)) << "restart " << restart;
        EXPECT_GE(nominal, prev_nominal) << "nominal backoff must be monotone";
        prev_nominal = nominal;
    }
}

TEST_F(FarmTest, JournalScanIsIncrementalAndTolerant) {
    const std::string path = dir_ + "/scan.jnl";
    DeviceRecord r{};
    auto record_payload = [&](std::uint64_t gdi) {
        r.gdi = gdi;
        std::vector<std::uint8_t> p(sizeof(r));
        std::memcpy(p.data(), &r, sizeof(r));
        return p;
    };
    JournalProgress prog;
    {
        JournalWriter w(path);
        w.append(kFleetMetaFrame, {1, 2, 3});
        w.append(kFleetRecordFrame, record_payload(4));
        std::vector<std::uint8_t> hb(16, 0);
        hb[8] = 1; // completed = 1
        w.append(kFleetHeartbeatFrame, hb);
        w.append(0x58585858u, {9, 9}); // unknown kind: counted by no counter
        scan_journal(path, prog);
        EXPECT_EQ(prog.record_frames, 1u);
        EXPECT_EQ(prog.heartbeats, 1u);
        EXPECT_EQ(prog.heartbeat_devices, 1u);
        EXPECT_EQ(prog.duplicate_records, 0u);
        const std::uint64_t offset_after_first = prog.offset;
        // Incremental: more frames later only advance the scan.
        w.append(kFleetRecordFrame, record_payload(6));
        w.append(kFleetRecordFrame, record_payload(4)); // duplicate gdi!
        scan_journal(path, prog);
        EXPECT_GT(prog.offset, offset_after_first);
        EXPECT_EQ(prog.record_frames, 3u);
        EXPECT_EQ(prog.gdis.size(), 2u);
        EXPECT_EQ(prog.duplicate_records, 1u);
    }
    // A mid-append tail (partial frame) must not advance the offset; once
    // the frame completes, the next scan picks it up.
    const std::uint64_t clean_offset = prog.offset;
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        const std::uint32_t head[2] = {kFleetRecordFrame, sizeof(DeviceRecord)};
        f.write(reinterpret_cast<const char*>(head), 4); // half a header
    }
    scan_journal(path, prog);
    EXPECT_EQ(prog.offset, clean_offset);
    EXPECT_EQ(prog.record_frames, 3u);
    {
        const JournalContents jc = read_journal(path);
        JournalWriter w(path, jc.clean_bytes); // drop the stump, as a resume would
        w.append(kFleetRecordFrame, record_payload(8));
    }
    scan_journal(path, prog);
    EXPECT_EQ(prog.record_frames, 4u);
    EXPECT_EQ(prog.gdis.count(8), 1u);
    // A missing file is "no progress yet", not an error.
    JournalProgress empty;
    scan_journal(dir_ + "/nonexistent.jnl", empty);
    EXPECT_EQ(empty.bytes, 0u);
    EXPECT_EQ(empty.record_frames, 0u);
}

TEST_F(FarmTest, MergeStoresRebuildsTheUnshardedArtifact) {
    FleetOptions fo;
    fo.seed = 11;
    fo.devices = 16;
    fo.cohorts = 2;
    fo.threads = 2;
    std::istringstream in(kTimeline);
    const scenario::Timeline tl = scenario::parse_timeline(in);

    // Reference: the unsharded engine run.
    FleetEngine ref_eng(tl, fo);
    const FleetResult ref = ref_eng.run();
    std::ostringstream ref_json;
    write_json(ref_json, "timeline.txt", fo, tl.block_period_s, ref.aggregate,
               ref.records.size());

    // Shard arm: run each shard separately, store to disk, merge back.
    const unsigned n = 3;
    std::vector<std::string> paths;
    for (unsigned k = 0; k < n; ++k) {
        FleetOptions so = fo;
        so.shard_k = k;
        so.shard_n = n;
        FleetEngine eng(tl, so);
        const FleetResult res = eng.run();
        StoreHeader hdr;
        hdr.cohorts = so.cohorts;
        hdr.seed = so.seed;
        hdr.devices = so.devices;
        hdr.shard_k = k;
        hdr.shard_n = n;
        paths.push_back(dir_ + "/shard_" + std::to_string(k) + ".ulpf");
        write_store(paths.back(), hdr, res.records);
    }
    const MergedFleet merged = merge_stores(fo, "timeline.txt", tl.block_period_s, paths);
    EXPECT_EQ(merged.json, ref_json.str()) << "merged JSON must be byte-identical";
    ASSERT_EQ(merged.records.size(), ref.records.size());
    EXPECT_EQ(0, std::memcmp(merged.records.data(), ref.records.data(),
                             merged.records.size() * sizeof(DeviceRecord)));

    // A store whose header disagrees with the farm spec must be rejected.
    FleetOptions wrong = fo;
    wrong.seed = 12;
    EXPECT_THROW(merge_stores(wrong, "timeline.txt", tl.block_period_s, paths), FarmError);
    std::vector<std::string> reordered = {paths[1], paths[0], paths[2]};
    EXPECT_THROW(merge_stores(fo, "timeline.txt", tl.block_period_s, reordered), FarmError)
        << "shard k must sit at index k";
    EXPECT_THROW(merge_stores(fo, "timeline.txt", tl.block_period_s, {paths[0]}), FarmError)
        << "a lone shard of 3 is not a complete set";
}

TEST_F(FarmTest, ConstructorRejectsUnusableOptions) {
    {
        FarmOptions opt = base_options();
        opt.workers = 0;
        EXPECT_THROW(Farm farm(opt), FarmError);
    }
    {
        FarmOptions opt = base_options();
        opt.workers = static_cast<unsigned>(opt.fleet.devices) + 1;
        EXPECT_THROW(Farm farm(opt), FarmError) << "empty shards";
    }
    {
        FarmOptions opt = base_options();
        opt.timeout_s = opt.heartbeat_s / 2;
        EXPECT_THROW(Farm farm(opt), FarmError) << "timeout below heartbeat";
    }
    {
        FarmOptions opt = base_options();
        opt.fleet_bin = dir_ + "/no-such-binary";
        EXPECT_THROW(Farm farm(opt), FarmError);
    }
    {
        FarmOptions opt = base_options();
        opt.timeline_path = dir_ + "/no-such-timeline.txt";
        EXPECT_THROW(Farm farm(opt), FarmError);
    }
}

TEST_F(FarmTest, SupervisedChaosRunMatchesTheInProcessReference) {
    FarmOptions opt = base_options();
    opt.chaos_kills = 2;
    opt.chaos_seed = 5;
    opt.json_path = dir_ + "/merged.json";
    opt.store_path = dir_ + "/merged.ulpf";

    FleetOptions ref_opt = opt.fleet;
    ref_opt.threads = 2;
    std::istringstream in(kTimeline);
    const scenario::Timeline tl = scenario::parse_timeline(in);
    FleetEngine ref_eng(tl, ref_opt);
    const FleetResult ref = ref_eng.run();
    std::ostringstream ref_json;
    write_json(ref_json, "timeline.txt", ref_opt, tl.block_period_s, ref.aggregate,
               ref.records.size());

    std::ostringstream log;
    Farm farm(opt, &log);
    const FarmReport rep = farm.run();
    EXPECT_TRUE(rep.complete) << log.str();
    EXPECT_TRUE(rep.dead_shards.empty());
    EXPECT_EQ(rep.chaos_kills, 2u) << log.str();
    EXPECT_GE(rep.restarts, 2u) << "each chaos kill forces a restart";
    EXPECT_EQ(rep.merged_json, ref_json.str()) << "merged JSON must be byte-identical";
    EXPECT_EQ(rep.duplicate_records, 0u) << "no journaled device may be re-simulated";
    EXPECT_EQ(rep.devices_journaled, opt.fleet.devices);
    EXPECT_EQ(rep.devices_simulated, opt.fleet.devices);

    // The written artifacts match the report's in-memory copies.
    std::ifstream jf(opt.json_path, std::ios::binary);
    std::stringstream js;
    js << jf.rdbuf();
    EXPECT_EQ(js.str(), rep.merged_json);
    const LoadedStore st = read_store(opt.store_path);
    EXPECT_EQ(st.header.shard_n, 1u);
    ASSERT_EQ(st.records.size(), ref.records.size());
    EXPECT_EQ(0, std::memcmp(st.records.data(), ref.records.data(),
                             st.records.size() * sizeof(DeviceRecord)));
}

TEST_F(FarmTest, ExhaustedRetryBudgetNamesTheDeadShardAndSkipsTheMerge) {
    FarmOptions opt = base_options();
    // A worker binary that always fails with a restartable status.
    opt.fleet_bin = "/bin/false";
    opt.retries = 2;
    opt.json_path = dir_ + "/merged.json";
    std::ostringstream log;
    Farm farm(opt, &log);
    const FarmReport rep = farm.run();
    EXPECT_FALSE(rep.complete);
    ASSERT_EQ(rep.dead_shards.size(), opt.workers) << log.str();
    for (unsigned k = 0; k < opt.workers; ++k) {
        EXPECT_EQ(rep.shards[k].attempts, opt.retries + 1) << "initial try + retries";
        EXPECT_TRUE(rep.shards[k].dead);
    }
    EXPECT_EQ(rep.restarts, opt.workers * opt.retries);
    EXPECT_FALSE(std::filesystem::exists(opt.json_path))
        << "a partial failure must not publish merged artifacts";
}

TEST_F(FarmTest, MetaDisagreementIsPermanentNotRetried) {
    FarmOptions opt = base_options();
    opt.retries = 5;
    // Pre-seed shard 0's journal with a meta frame from a DIFFERENT run:
    // the worker must refuse to resume (exit 2) and the farm must declare
    // the shard dead immediately instead of burning the retry budget.
    std::filesystem::create_directories(opt.dir);
    {
        JournalWriter w(opt.dir + "/shard_0.jnl");
        w.append(kFleetMetaFrame, {0xDE, 0xAD, 0xBE, 0xEF});
    }
    std::ostringstream log;
    Farm farm(opt, &log);
    const FarmReport rep = farm.run();
    EXPECT_FALSE(rep.complete);
    ASSERT_EQ(rep.dead_shards.size(), 1u) << log.str();
    EXPECT_EQ(rep.dead_shards[0], 0u);
    EXPECT_EQ(rep.shards[0].attempts, 1u) << "no restart can fix a spec disagreement";
    EXPECT_EQ(rep.shards[0].last_status, 2);
    EXPECT_TRUE(rep.shards[1].done) << "the healthy shard still completes";
}

} // namespace
} // namespace ulpmc::fleet
