#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/scheduler.hpp"

namespace ulpmc::fleet {
namespace {

TEST(Scheduler, RunsEveryIndexExactlyOnce) {
    WorkStealingPool pool(4);
    ASSERT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(1013);
    const auto stats = pool.run(hits.size(), [&](std::uint64_t i, unsigned) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    EXPECT_EQ(stats.executed, hits.size());
    EXPECT_EQ(stats.workers, 4u);
}

TEST(Scheduler, WorkerIdsStayInRange) {
    WorkStealingPool pool(3);
    std::atomic<bool> bad{false};
    pool.run(200, [&](std::uint64_t, unsigned w) {
        if (w >= 3) bad = true;
    });
    EXPECT_FALSE(bad.load());
}

TEST(Scheduler, StealsRebalanceSkewedLoad) {
    // Index 0..9 are very slow, the rest instant. With the initial
    // contiguous deal, worker 0 owns all the slow ones — the other
    // workers must steal from it to finish the batch in slow-time, not
    // 10x slow-time. We only assert stealing HAPPENED and everything ran;
    // timing assertions would flake on loaded CI.
    WorkStealingPool pool(4);
    std::atomic<std::uint64_t> done{0};
    const auto stats = pool.run(400, [&](std::uint64_t i, unsigned) {
        if (i < 10) std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++done;
    });
    EXPECT_EQ(done.load(), 400u);
    EXPECT_EQ(stats.executed, 400u);
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GT(stats.stolen_tasks, 0u);
}

TEST(Scheduler, SingleWorkerDegeneratesToSequential) {
    WorkStealingPool pool(1);
    std::vector<std::uint64_t> order;
    const auto stats = pool.run(50, [&](std::uint64_t i, unsigned w) {
        EXPECT_EQ(w, 0u);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
    EXPECT_EQ(stats.steals, 0u);
}

TEST(Scheduler, EmptyBatchIsFine) {
    WorkStealingPool pool(4);
    const auto stats = pool.run(0, [&](std::uint64_t, unsigned) { FAIL(); });
    EXPECT_EQ(stats.executed, 0u);
}

TEST(Scheduler, FirstExceptionPropagates) {
    WorkStealingPool pool(4);
    EXPECT_THROW(pool.run(100,
                          [&](std::uint64_t i, unsigned) {
                              if (i == 42) throw std::runtime_error("device 42 exploded");
                          }),
                 std::runtime_error);
}

} // namespace
} // namespace ulpmc::fleet
