// Fleet determinism contract (DESIGN.md §13): the JSON artifact is a pure
// function of (timeline, FleetOptions) — byte-identical across scheduler
// thread counts, simulator engine tiers, and shard splits. These are the
// same pins CI re-checks end-to-end through the ulpmc-fleet binary.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "scenario/timeline.hpp"

namespace ulpmc::fleet {
namespace {

constexpr char kTimeline[] = R"(
block_period_s 2.0
battery_j 0.006
phase clean     60 harvest_uw=50
phase radiation 60 lambda=2e-7 ble_loss=0.05 harvest_uw=50
phase drought   60 ble=down harvest_uw=150
phase recovery  60 ble_loss=0.01 harvest_uw=400
)";

scenario::Timeline timeline() {
    std::istringstream in(kTimeline);
    return scenario::parse_timeline(in);
}

FleetOptions base_options() {
    FleetOptions opt;
    opt.seed = 11;
    opt.devices = 16;
    opt.cohorts = 2;
    opt.threads = 2;
    return opt;
}

FleetResult run_fleet(const FleetOptions& opt) {
    const scenario::Timeline tl = timeline();
    FleetEngine eng(tl, opt);
    return eng.run();
}

std::string render(const FleetOptions& opt, const FleetAggregate& agg, std::uint64_t records) {
    std::ostringstream os;
    write_json(os, "test", opt, 2.0, agg, records);
    return os.str();
}

TEST(Fleet, DeviceSpecIsPureAndHeterogeneous) {
    FleetOptions opt = base_options();
    opt.devices = 200;
    std::set<std::uint8_t> arches, policies;
    std::set<std::uint64_t> seeds;
    for (std::uint64_t gdi = 0; gdi < opt.devices; ++gdi) {
        const DeviceSpec a = device_spec(opt, gdi);
        const DeviceSpec b = device_spec(opt, gdi);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.initial_charge, b.initial_charge);
        EXPECT_EQ(a.cohort, gdi % opt.cohorts);
        EXPECT_GE(a.initial_charge, 0.6);
        EXPECT_LE(a.initial_charge, 1.0);
        arches.insert(static_cast<std::uint8_t>(a.arch));
        policies.insert(static_cast<std::uint8_t>(a.policy));
        seeds.insert(a.seed);
    }
    EXPECT_EQ(arches.size(), 3u) << "all three architectures deployed";
    EXPECT_EQ(policies.size(), 2u) << "both policies deployed";
    EXPECT_EQ(seeds.size(), opt.devices) << "per-device seeds are distinct";
}

TEST(Fleet, ShardDeviceCountPartitions) {
    for (std::uint64_t devices : {1u, 7u, 16u, 1000u}) {
        for (unsigned n : {1u, 2u, 3u, 7u}) {
            std::uint64_t sum = 0;
            for (unsigned k = 0; k < n; ++k) sum += shard_device_count(devices, k, n);
            EXPECT_EQ(sum, devices) << devices << " over " << n;
        }
    }
}

TEST(Fleet, RecordsAscendGdiAndMatchSpecs) {
    const FleetOptions opt = base_options();
    const FleetResult res = run_fleet(opt);
    ASSERT_EQ(res.records.size(), opt.devices);
    for (std::size_t i = 0; i < res.records.size(); ++i) {
        const DeviceRecord& r = res.records[i];
        const DeviceSpec spec = device_spec(opt, i);
        EXPECT_EQ(r.gdi, i);
        EXPECT_EQ(r.cohort, spec.cohort);
        EXPECT_EQ(r.arch, static_cast<std::uint8_t>(spec.arch));
        EXPECT_EQ(r.policy, static_cast<std::uint8_t>(spec.policy));
        EXPECT_GT(r.energy_nj, 0u);
        EXPECT_GT(r.samples_total, 0u);
    }
    EXPECT_EQ(res.sched.executed, opt.devices);
    EXPECT_GT(res.calibrations, 0u);
}

TEST(Fleet, ThreadCountNeverReachesTheArtifact) {
    FleetOptions opt = base_options();
    opt.threads = 1;
    const std::string one = render(opt, run_fleet(opt).aggregate, opt.devices);
    opt.threads = 4;
    const std::string four = render(opt, run_fleet(opt).aggregate, opt.devices);
    opt.threads = 8;
    const std::string eight = render(opt, run_fleet(opt).aggregate, opt.devices);
    EXPECT_EQ(one, four);
    EXPECT_EQ(one, eight);
}

TEST(Fleet, EngineTierNeverReachesTheArtifact) {
    FleetOptions opt = base_options();
    opt.engine = cluster::SimEngine::Trace;
    const std::string trace = render(opt, run_fleet(opt).aggregate, opt.devices);
    opt.engine = cluster::SimEngine::Batched;
    const std::string batched = render(opt, run_fleet(opt).aggregate, opt.devices);
    EXPECT_EQ(trace, batched);
}

TEST(Fleet, MergedShardsReproduceUnshardedBytes) {
    const FleetOptions opt = base_options();
    const std::string whole = render(opt, run_fleet(opt).aggregate, opt.devices);

    FleetOptions s0 = opt, s1 = opt;
    s0.shard_k = 0;
    s0.shard_n = 2;
    s1.shard_k = 1;
    s1.shard_n = 2;
    const FleetResult r0 = run_fleet(s0);
    const FleetResult r1 = run_fleet(s1);
    EXPECT_EQ(r0.records.size() + r1.records.size(), opt.devices);

    // Merge in both orders: the aggregate must be order-free.
    FleetAggregate m01 = r0.aggregate;
    m01.merge(r1.aggregate);
    FleetAggregate m10 = r1.aggregate;
    m10.merge(r0.aggregate);
    EXPECT_EQ(render(opt, m01, opt.devices), whole);
    EXPECT_EQ(render(opt, m10, opt.devices), whole);
}

TEST(Fleet, ResumeReplaysJournaledDevicesByteIdentical) {
    // Simulated crash-and-resume (DESIGN.md §9.6): the first run's journal
    // holds a prefix of completions; the resumed run must adopt them
    // without re-simulating, report only the fresh devices through
    // on_complete, and produce byte-identical records and artifact.
    const FleetOptions opt = base_options();
    const scenario::Timeline tl = timeline();

    std::vector<DeviceRecord> completion_order;
    FleetResume capture;
    capture.on_complete = [&](const DeviceRecord& r) { completion_order.push_back(r); };
    FleetEngine ref_eng(tl, opt);
    const FleetResult ref = ref_eng.run(capture);
    ASSERT_EQ(completion_order.size(), opt.devices);
    const std::string reference = render(opt, ref.aggregate, ref.records.size());

    // A journal killed mid-run holds some completion-order prefix.
    std::unordered_map<std::uint64_t, DeviceRecord> journaled;
    for (std::size_t i = 0; i < 7; ++i)
        journaled[completion_order[i].gdi] = completion_order[i];

    FleetResume hooks;
    hooks.lookup = [&](std::uint64_t gdi, DeviceRecord& out) {
        const auto it = journaled.find(gdi);
        if (it == journaled.end()) return false;
        out = it->second;
        return true;
    };
    std::size_t fresh = 0;
    hooks.on_complete = [&](const DeviceRecord& r) {
        ++fresh;
        EXPECT_EQ(journaled.count(r.gdi), 0u) << "replayed device re-reported";
    };
    FleetEngine eng(tl, opt);
    const FleetResult res = eng.run(hooks);
    EXPECT_EQ(fresh, opt.devices - journaled.size());
    ASSERT_EQ(res.records.size(), ref.records.size());
    EXPECT_EQ(std::memcmp(res.records.data(), ref.records.data(),
                          res.records.size() * sizeof(DeviceRecord)),
              0);
    EXPECT_EQ(render(opt, res.aggregate, res.records.size()), reference);
}

TEST(Fleet, FullyJournaledShardSimulatesNothing) {
    const FleetOptions opt = base_options();
    const scenario::Timeline tl = timeline();
    const FleetResult ref = run_fleet(opt);

    FleetResume hooks;
    hooks.lookup = [&](std::uint64_t gdi, DeviceRecord& out) {
        out = ref.records[gdi / 1]; // unsharded: records[i].gdi == i
        return true;
    };
    hooks.on_complete = [](const DeviceRecord&) {
        FAIL() << "a fully journaled shard must not simulate any device";
    };
    FleetEngine eng(tl, opt);
    const FleetResult res = eng.run(hooks);
    EXPECT_EQ(render(opt, res.aggregate, res.records.size()),
              render(opt, ref.aggregate, ref.records.size()));
}

TEST(Fleet, ShardArtifactCarriesShardKey) {
    FleetOptions opt = base_options();
    opt.shard_k = 1;
    opt.shard_n = 2;
    const FleetResult res = run_fleet(opt);
    const std::string json = render(opt, res.aggregate, res.records.size());
    EXPECT_NE(json.find("\"shard\": \"1/2\""), std::string::npos);
    // The unsharded artifact must NOT carry the key (merged output equals
    // unsharded bytes only because of this).
    FleetOptions whole = base_options();
    EXPECT_EQ(render(whole, res.aggregate, res.records.size()).find("\"shard\""),
              std::string::npos);
}

} // namespace
} // namespace ulpmc::fleet
