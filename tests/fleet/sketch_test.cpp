#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "fleet/sketch.hpp"

namespace ulpmc::fleet {
namespace {

TEST(Sketch, BinningRoundTrips) {
    // Every positive value lands in the bin whose [lo, hi) edges bracket
    // it, across many octaves (nanojoules to kilojoules).
    for (double x : {1e-9, 3.7e-6, 0.01, 0.5, 0.9999, 1.0, 1.5, 2.0, 42.0, 1e3, 7.3e8}) {
        const std::int32_t b = QuantileSketch::bin_of(x);
        EXPECT_LE(QuantileSketch::bin_lo(b), x) << x;
        EXPECT_LT(x, QuantileSketch::bin_lo(b + 1)) << x;
    }
}

TEST(Sketch, BinWidthBoundsRelativeError) {
    // 32 sub-bins per octave: hi/lo <= 1 + 1/32 for positive bins, so a
    // bin midpoint is within ~1.6% of any member value.
    for (std::int32_t b : {-200, -33, -1, 0, 1, 31, 32, 200}) {
        const double lo = QuantileSketch::bin_lo(b);
        const double hi = QuantileSketch::bin_lo(b + 1);
        EXPECT_GT(hi, lo);
        EXPECT_LE(hi / lo, 1.0 + 1.0 / 16.0) << "bin " << b;
    }
}

TEST(Sketch, QuantilesTrackExactWithinBinError) {
    QuantileSketch sk;
    std::vector<double> vals;
    Rng r(99);
    for (int i = 0; i < 10'000; ++i) {
        const double x = 0.001 + 10.0 * r.uniform();
        vals.push_back(x);
        sk.add(x);
    }
    std::sort(vals.begin(), vals.end());
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        const double exact = vals[static_cast<std::size_t>(q * (vals.size() - 1))];
        const double est = sk.quantile(q);
        EXPECT_NEAR(est, exact, exact * 0.04) << "q=" << q;
    }
    EXPECT_EQ(sk.count(), 10'000u);
    EXPECT_DOUBLE_EQ(sk.min(), vals.front());
    EXPECT_DOUBLE_EQ(sk.max(), vals.back());
}

TEST(Sketch, ZeroBucketIsExact) {
    QuantileSketch sk;
    for (int i = 0; i < 90; ++i) sk.add(0.0);
    for (int i = 0; i < 10; ++i) sk.add(5.0);
    EXPECT_EQ(sk.zero_count(), 90u);
    EXPECT_EQ(sk.quantile(0.5), 0.0);
    EXPECT_GT(sk.quantile(0.95), 4.0);
}

TEST(Sketch, MergeIsOrderFree) {
    // The shard-merge contract: any partition of the input, merged in any
    // order, produces bit-identical state (bins, counts, extrema) to the
    // sequential sketch.
    Rng r(7);
    std::vector<double> vals;
    for (int i = 0; i < 5'000; ++i)
        vals.push_back(r.uniform() < 0.05 ? 0.0 : 1e-6 * (1.0 + 1e5 * r.uniform()));

    QuantileSketch whole;
    for (double v : vals) whole.add(v);

    QuantileSketch shards[3];
    for (std::size_t i = 0; i < vals.size(); ++i) shards[i % 3].add(vals[i]);

    QuantileSketch m1; // forward merge order
    m1.merge(shards[0]);
    m1.merge(shards[1]);
    m1.merge(shards[2]);
    QuantileSketch m2; // reversed
    m2.merge(shards[2]);
    m2.merge(shards[1]);
    m2.merge(shards[0]);

    for (const QuantileSketch* m : {&m1, &m2}) {
        EXPECT_EQ(m->count(), whole.count());
        EXPECT_EQ(m->zero_count(), whole.zero_count());
        EXPECT_EQ(m->bins(), whole.bins());
        EXPECT_DOUBLE_EQ(m->min(), whole.min());
        EXPECT_DOUBLE_EQ(m->max(), whole.max());
        for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
            EXPECT_DOUBLE_EQ(m->quantile(q), whole.quantile(q)) << "q=" << q;
    }
}

TEST(Sketch, EmptyAndSingleton) {
    QuantileSketch sk;
    EXPECT_EQ(sk.count(), 0u);
    EXPECT_EQ(sk.quantile(0.5), 0.0);
    sk.add(3.25);
    EXPECT_EQ(sk.count(), 1u);
    // A single observation: every quantile reports its bin midpoint
    // (quantiles are a pure function of the integer bins, never the float
    // extrema — the merge tool relies on this).
    const std::int32_t b = QuantileSketch::bin_of(3.25);
    const double mid = (QuantileSketch::bin_lo(b) + QuantileSketch::bin_lo(b + 1)) * 0.5;
    EXPECT_DOUBLE_EQ(sk.quantile(0.0), mid);
    EXPECT_DOUBLE_EQ(sk.quantile(1.0), mid);
    EXPECT_NEAR(mid, 3.25, 3.25 / 32.0);
}

} // namespace
} // namespace ulpmc::fleet
