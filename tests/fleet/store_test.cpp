#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/store.hpp"

namespace ulpmc::fleet {
namespace {

class StoreTest : public ::testing::Test {
protected:
    std::string path_;

    void SetUp() override {
        path_ = ::testing::TempDir() + "fleet_store_test.ulpf";
    }
    void TearDown() override { std::remove(path_.c_str()); }

    static StoreHeader header(std::uint64_t devices, unsigned k, unsigned n) {
        StoreHeader h;
        h.cohorts = 4;
        h.seed = 42;
        h.devices = devices;
        h.shard_k = k;
        h.shard_n = n;
        return h;
    }

    static std::vector<DeviceRecord> records(std::uint64_t devices, unsigned k, unsigned n) {
        std::vector<DeviceRecord> rs;
        for (std::uint64_t gdi = k; gdi < devices; gdi += n) {
            DeviceRecord r;
            r.gdi = gdi;
            r.energy_nj = 1000 + gdi;
            r.samples_total = 4096;
            r.samples_delivered = 4000 - gdi;
            r.total_blocks = 8;
            r.cohort = static_cast<std::uint32_t>(gdi % 4);
            rs.push_back(r);
        }
        return rs;
    }
};

TEST_F(StoreTest, RoundTripsHeaderAndRecords) {
    const auto rs = records(10, 1, 3);
    write_store(path_, header(10, 1, 3), rs);
    const LoadedStore ls = read_store(path_);
    EXPECT_EQ(ls.header.seed, 42u);
    EXPECT_EQ(ls.header.devices, 10u);
    EXPECT_EQ(ls.header.shard_k, 1u);
    EXPECT_EQ(ls.header.shard_n, 3u);
    ASSERT_EQ(ls.records.size(), rs.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(ls.records[i].gdi, rs[i].gdi);
        EXPECT_EQ(ls.records[i].energy_nj, rs[i].energy_nj);
        EXPECT_EQ(ls.records[i].samples_delivered, rs[i].samples_delivered);
    }
}

TEST_F(StoreTest, RejectsBadMagic) {
    write_store(path_, header(4, 0, 1), records(4, 0, 1));
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.write("NOPE", 4);
    f.close();
    EXPECT_THROW(read_store(path_), FleetStoreError);
}

TEST_F(StoreTest, RejectsTruncatedTail) {
    write_store(path_, header(4, 0, 1), records(4, 0, 1));
    std::ifstream in(path_, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() - 13));
    out.close();
    EXPECT_THROW(read_store(path_), FleetStoreError);
}

TEST_F(StoreTest, RejectsRecordCountContradictingHeader) {
    // Header says 8 devices unsharded, payload holds only 4 records: a
    // partial shard must never aggregate as if it were whole.
    write_store(path_, header(8, 0, 1), records(4, 0, 1));
    EXPECT_THROW(read_store(path_), FleetStoreError);
}

TEST_F(StoreTest, RejectsWrongGdiSequence) {
    // Records from shard 1/3 presented under a shard-0/3 header.
    write_store(path_, header(9, 0, 3), records(9, 1, 3));
    EXPECT_THROW(read_store(path_), FleetStoreError);
}

TEST_F(StoreTest, RejectsMissingFile) {
    EXPECT_THROW(read_store(path_ + ".nope"), FleetStoreError);
}

TEST_F(StoreTest, RejectsEmptyFile) {
    std::ofstream(path_, std::ios::binary | std::ios::trunc).close();
    EXPECT_THROW(read_store(path_), FleetStoreError);
}

} // namespace
} // namespace ulpmc::fleet
