// Resilient streaming monitor tests (DESIGN.md §9): block-boundary
// checkpoint/rollback heals transient upsets, persistent upsets degrade
// to drop-one-lead with every surviving lead still bit-exact (acceptance
// behavior b), and SEC-DED heals in-flight without costing a rollback.
#include <gtest/gtest.h>

#include "app/streaming.hpp"
#include "fault/campaign.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::app {
namespace {

cluster::ClusterConfig stream_config(const StreamingBenchmark& s) {
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, s.base().layout().dm_layout());
    cfg.watchdog_cycles = 20'000;
    return cfg;
}

TEST(ResilientStreaming, FaultFreeRunNeverRollsBack) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    const auto out = s.run_resilient(stream_config(s));
    EXPECT_EQ(out.blocks, 2u);
    EXPECT_EQ(out.rollbacks, 0u);
    EXPECT_EQ(out.leads_dropped, 0u);
    EXPECT_TRUE(out.all_surviving_verified);
    EXPECT_EQ(out.total_cycles, 2 * out.clean_block_cycles);
}

TEST(ResilientStreaming, TransientUpsetRollsBackOnceAndVerifies) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    const Addr strike = static_cast<Addr>(s.base().layout().x_base() + 40);
    unsigned hook_calls = 0;
    const auto out = s.run_resilient(
        stream_config(s), [&](cluster::Cluster& cl, unsigned block, unsigned attempt) {
            ++hook_calls;
            if (block == 0 && attempt == 0) {
                cl.run(300);
                cl.inject_dm_fault(3, strike, 0x2000); // lead 3's sample buffer
            }
        });
    EXPECT_EQ(out.blocks, 2u);
    EXPECT_EQ(out.rollbacks, 1u) << "block 0 re-executes from its checkpoint";
    EXPECT_EQ(out.leads_dropped, 0u) << "the retry is clean: no degradation";
    EXPECT_TRUE(out.all_surviving_verified);
    EXPECT_EQ(hook_calls, 3u) << "block 0 twice, block 1 once";
}

TEST(ResilientStreaming, PersistentUpsetDropsOnlyTheBrokenLead) {
    // A latched fault re-hits lead 5 on every attempt of block 1: rollback
    // cannot heal it, so the lead is dropped while the other seven keep
    // streaming verified (acceptance behavior b).
    const StreamingBenchmark s({.use_barrier = true}, 3);
    const Addr strike = static_cast<Addr>(s.base().layout().x_base() + 11);
    const auto out = s.run_resilient(
        stream_config(s), [&](cluster::Cluster& cl, unsigned block, unsigned) {
            if (block >= 1) {
                cl.run(300);
                cl.inject_dm_fault(5, strike, 0x4000);
            }
        });
    EXPECT_EQ(out.blocks, 3u);
    EXPECT_EQ(out.rollbacks, 1u) << "block 1's first failure tries a rollback";
    EXPECT_EQ(out.leads_dropped, 1u);
    ASSERT_EQ(out.lead_alive.size(), 8u);
    for (unsigned p = 0; p < 8; ++p) EXPECT_EQ(out.lead_alive[p], p == 5 ? 0 : 1) << p;
    EXPECT_TRUE(out.all_surviving_verified);
}

TEST(ResilientStreaming, EccHealsUpsetWithoutRollback) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    auto cfg = stream_config(s);
    cfg.ecc_enabled = true;
    const Addr strike = static_cast<Addr>(s.base().layout().x_base() + 40);
    const auto out =
        s.run_resilient(cfg, [&](cluster::Cluster& cl, unsigned block, unsigned attempt) {
            if (block == 0 && attempt == 0) {
                cl.run(300);
                cl.inject_dm_fault(3, strike, 0x2000);
            }
        });
    EXPECT_EQ(out.rollbacks, 0u) << "SEC-DED corrects in flight: no rollback needed";
    EXPECT_EQ(out.leads_dropped, 0u);
    EXPECT_GE(out.ecc_corrected, 1u);
    EXPECT_TRUE(out.all_surviving_verified);
}

TEST(CheckpointedStreaming, FaultFreeRunTakesOneCheckpointPerBlock) {
    // The generalized service replaces per-block cluster rebuilds with one
    // continuous cluster: cross-block state survives, and the only cost in
    // a clean run is the checkpoints themselves — one per block boundary
    // plus the final commit point after the drain.
    const StreamingBenchmark s({.use_barrier = true}, 3);
    const auto out = s.run_checkpointed(stream_config(s));
    EXPECT_EQ(out.blocks, 3u);
    EXPECT_EQ(out.checkpoints, 4u);
    EXPECT_EQ(out.rollbacks, 0u);
    EXPECT_EQ(out.reexec_cycles, 0u);
    EXPECT_EQ(out.leads_dropped, 0u);
    EXPECT_TRUE(out.all_surviving_verified);
}

TEST(CheckpointedStreaming, TransientUpsetReplaysFromCheckpoint) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    const Addr strike = static_cast<Addr>(s.base().layout().x_base() + 40);
    const auto out = s.run_checkpointed(
        stream_config(s), [&](cluster::Cluster& cl, unsigned block, unsigned attempt) {
            if (block == 0 && attempt == 0) {
                cl.run(cl.stats().cycles + 300);
                cl.inject_dm_fault(3, strike, 0x2000);
            }
        });
    EXPECT_EQ(out.blocks, 2u);
    EXPECT_EQ(out.rollbacks, 1u) << "block 0 replays from its checkpoint";
    EXPECT_GT(out.reexec_cycles, 0u) << "the replay is priced, not free";
    EXPECT_EQ(out.leads_dropped, 0u);
    EXPECT_TRUE(out.all_surviving_verified);
}

TEST(CheckpointedStreaming, PersistentUpsetStillDegradesToDropOneLead) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    const Addr strike = static_cast<Addr>(s.base().layout().x_base() + 11);
    const auto out = s.run_checkpointed(
        stream_config(s), [&](cluster::Cluster& cl, unsigned block, unsigned) {
            if (block >= 1) {
                cl.run(cl.stats().cycles + 300);
                cl.inject_dm_fault(5, strike, 0x4000);
            }
        });
    EXPECT_EQ(out.rollbacks, 1u);
    EXPECT_EQ(out.leads_dropped, 1u);
    ASSERT_EQ(out.lead_alive.size(), 8u);
    for (unsigned p = 0; p < 8; ++p) EXPECT_EQ(out.lead_alive[p], p == 5 ? 0 : 1) << p;
    EXPECT_TRUE(out.all_surviving_verified);
}

TEST(ResilientStreaming, StreamingCampaignIsReproducible) {
    const StreamingBenchmark s({.use_barrier = true}, 2);
    fault::CampaignConfig cfg;
    cfg.seed = 5;
    cfg.injections = 8;
    sweep::SweepRunner serial(1), parallel(3);
    const auto a = fault::run_streaming_campaign(s, cluster::ArchKind::UlpmcBank, cfg, serial);
    const auto b = fault::run_streaming_campaign(s, cluster::ArchKind::UlpmcBank, cfg, parallel);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].fault.describe(), b.runs[i].fault.describe()) << i;
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    }
    EXPECT_EQ(a.counts, b.counts);
}

} // namespace
} // namespace ulpmc::app
