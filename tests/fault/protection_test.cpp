// Architectural-state protection tests (DESIGN.md §9): register parity
// traps on the first read of a struck register, TMR out-votes the same
// strike silently, never-read upsets are classified latent instead of
// masked, adjacent-bit bursts defeat SEC-DED but not checkpoint replay,
// the protected streaming campaign reaches zero SDC, and the
// classification tables are identical across all three engine tiers and
// across shard splits.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <string>
#include <vector>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/cluster.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "power/calibration.hpp"
#include "power/power_model.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::fault {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 256};

// Countdown that only touches r2, then reads r5 exactly once: a strike
// on r5 mid-loop stays latched until the read after the loop.
const char* kDelayedRead = R"(
    movi r5, 3
    movi r2, 20
loop:
    sub  r2, r2, #1
    bra  ne, loop
    add  r6, r5, #1
    hlt
)";

cluster::ClusterConfig protected_config(core::RegProtection prot,
                                        cluster::SimEngine engine) {
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, kLayout);
    cfg.cores = 1;
    cfg.reg_protection = prot;
    cfg.engine = engine;
    return cfg;
}

TEST(RegProtection, ParityTrapsOnFirstReadOfStruckRegister) {
    const auto prog = isa::assemble(kDelayedRead);
    for (const auto engine : {cluster::SimEngine::Reference, cluster::SimEngine::Fast,
                              cluster::SimEngine::Trace}) {
        cluster::Cluster cl(protected_config(core::RegProtection::Parity, engine), prog);
        cl.run(10); // r5 already holds 3, countdown in flight
        cl.inject_reg_fault(0, 5, 0x10);
        cl.run(10'000);
        EXPECT_EQ(cl.core_trap(0), core::Trap::RegParityFault) << cluster::engine_name(engine);
        EXPECT_EQ(cl.stats().reg_parity_traps, 1u) << cluster::engine_name(engine);
    }
}

TEST(RegProtection, TmrOutvotesStruckRegisterSilently) {
    const auto prog = isa::assemble(kDelayedRead);
    for (const auto engine : {cluster::SimEngine::Reference, cluster::SimEngine::Fast,
                              cluster::SimEngine::Trace}) {
        cluster::Cluster cl(protected_config(core::RegProtection::Tmr, engine), prog);
        cl.run(10);
        cl.inject_reg_fault(0, 5, 0x10);
        cl.run(10'000);
        EXPECT_EQ(cl.core_trap(0), core::Trap::None) << cluster::engine_name(engine);
        EXPECT_TRUE(cl.core_halted(0)) << cluster::engine_name(engine);
        EXPECT_EQ(cl.core_state(0).regs[6], 4u) << "vote must yield the clean value";
        EXPECT_EQ(cl.stats().reg_tmr_votes, 1u) << cluster::engine_name(engine);
    }
}

TEST(RegProtection, UnprotectedStrikeCorruptsSilently) {
    // The baseline the protection modes are measured against: with no
    // protection the flipped value flows straight into the dataflow.
    const auto prog = isa::assemble(kDelayedRead);
    cluster::Cluster cl(
        protected_config(core::RegProtection::None, cluster::SimEngine::Trace), prog);
    cl.run(10);
    cl.inject_reg_fault(0, 5, 0x10);
    cl.run(10'000);
    EXPECT_EQ(cl.core_trap(0), core::Trap::None);
    EXPECT_EQ(cl.core_state(0).regs[6], (3u ^ 0x10u) + 1u) << "silent data corruption";
}

TEST(RegProtection, NeverReadUpsetStaysLatent) {
    // A strike on a register the program never reads again must not trap,
    // must not corrupt, and must stay visible as a pending (latent) fault.
    const auto prog = isa::assemble(kDelayedRead);
    cluster::Cluster cl(
        protected_config(core::RegProtection::Parity, cluster::SimEngine::Trace), prog);
    cl.run(10);
    cl.inject_reg_fault(0, 9, 0x10); // r9: dead state
    cl.run(10'000);
    EXPECT_EQ(cl.core_trap(0), core::Trap::None);
    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.pending_reg_faults(), 1u);
    EXPECT_TRUE(cl.reg_parity_pending());
    EXPECT_EQ(cl.stats().reg_parity_traps, 0u);
}

TEST(RegProtection, ScrubClearsLatentUpsets) {
    const auto prog = isa::assemble(kDelayedRead);
    cluster::Cluster cl(
        protected_config(core::RegProtection::Tmr, cluster::SimEngine::Trace), prog);
    cl.run(10);
    cl.inject_reg_fault(0, 9, 0x10);
    cl.run(10'000);
    ASSERT_EQ(cl.pending_reg_faults(), 1u);
    cl.scrub_registers();
    EXPECT_EQ(cl.pending_reg_faults(), 0u);
    EXPECT_EQ(cl.stats().reg_tmr_votes, 1u) << "scrub repairs via the voter";
}

TEST(MultiBit, AdjacentTripleBurstDefeatsSecDed) {
    // SEC-DED(31,26) mis-decodes three adjacent flips as a single-bit
    // error at an aliased position: no trap, wrong data — exactly the
    // silent-corruption channel the checkpoint layer exists to close.
    const auto prog = isa::assemble(R"(
        movi r1, 70
        movi r2, 30
    loop:
        sub  r2, r2, #1
        bra  ne, loop
        mov  r3, @r1
        hlt
    )");
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, kLayout);
    cfg.cores = 1;
    cfg.ecc_enabled = true;

    cluster::Cluster burst(cfg, prog);
    burst.dm_poke(0, 70, 5);
    burst.run(10);
    burst.inject_dm_fault(0, 70, 0b111 << 4); // adjacent triple: aliases
    burst.run(10'000);
    EXPECT_EQ(burst.core_trap(0), core::Trap::None) << "mis-correction is silent";
    EXPECT_TRUE(burst.core_halted(0));
    EXPECT_NE(burst.core_state(0).regs[3], 5u) << "the read returns corrupt data";

    cluster::Cluster pair(cfg, prog);
    pair.dm_poke(0, 70, 5);
    pair.run(10);
    pair.inject_dm_fault(0, 70, 0b11 << 4); // double-bit: detected
    pair.run(10'000);
    EXPECT_EQ(pair.core_trap(0), core::Trap::EccFault) << "SEC-DED still detects pairs";
}

TEST(MultiBit, BurstDrawsAreAdjacentAndLegacyCompatible) {
    // burst_len = 1 must reproduce the exact PR2-era draw sequence (the
    // extra burst-position draw only happens for real bursts), and burst
    // masks must be runs of exactly burst_len adjacent bits.
    FaultUniverse legacy;
    legacy.text_words = 200;
    legacy.dm_words = 1000;
    legacy.cores = 8;
    legacy.window = 50'000;

    auto single = legacy;
    single.burst_len = 1;
    single.reg_burst = 1;
    FaultInjector a(123), b(123);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a.draw(legacy).describe(), b.draw(single).describe());

    auto burst = legacy;
    burst.burst_len = 3;
    burst.reg_burst = 2;
    FaultInjector inj(99);
    for (int i = 0; i < 64; ++i) {
        const auto f = inj.draw(burst);
        if (f.kind == FaultKind::DmBitFlip || f.kind == FaultKind::ImBitFlip) {
            ASSERT_NE(f.flip_mask, 0u);
            const auto m = f.flip_mask >> std::countr_zero(f.flip_mask);
            EXPECT_EQ(m, 0b111u) << "mask must be 3 adjacent bits, got " << f.flip_mask;
        } else if (f.kind == FaultKind::RegUpset) {
            EXPECT_EQ(f.burst, 2u);
        }
    }
}

TEST(Campaign, LatentOutcomeIsSeparatedFromMasked) {
    // Register upsets that never reach the dataflow must be reported as
    // latent, not inflate the "masked by luck" bucket.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 18;
    cfg.injections = 32;
    cfg.reg_burst = 2; // spatial pairs double the dead-register hit rate
    cfg.kinds = fault_bit(FaultKind::RegUpset);
    sweep::SweepRunner pool;
    const auto r = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    EXPECT_GE(r.count(Outcome::Latent), 1u) << "dead-state strikes exist in any real window";
    for (const auto& rec : r.runs) {
        // Latent is only reachable through the verified branch, and only
        // register strikes can latch without being consumed.
        if (rec.outcome == Outcome::Latent) EXPECT_EQ(rec.fault.kind, FaultKind::RegUpset);
    }
}

TEST(Campaign, BurstLadderMatchesProtectionTiers) {
    // The MBU ladder from EXPERIMENTS.md §9 in miniature: bursts get past
    // SEC-DED, parity turns the register share into fail-stops, and the
    // checkpoint tier turns those fail-stops into recoveries.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 13;
    cfg.injections = 32;
    cfg.ecc = true;
    cfg.burst_len = 3;
    cfg.reg_burst = 2;
    cfg.kinds = fault_bit(FaultKind::DmBitFlip) | fault_bit(FaultKind::RegUpset);
    sweep::SweepRunner pool;

    const auto ecc_only = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.reg_protection = core::RegProtection::Parity;
    const auto parity = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.checkpoint = true;
    const auto ckpt = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    EXPECT_GE(ecc_only.count(Outcome::Sdc), 1u) << "bursts must defeat SEC-DED";
    EXPECT_LE(parity.count(Outcome::Sdc), ecc_only.count(Outcome::Sdc));
    EXPECT_GE(parity.count(Outcome::Trapped), 1u) << "parity converts SDC to fail-stop";
    EXPECT_GE(ckpt.count(Outcome::RolledBack), 1u) << "checkpoint converts traps to recovery";
    EXPECT_LE(ckpt.count(Outcome::Sdc), parity.count(Outcome::Sdc));
    EXPECT_GT(ckpt.coverage(), ecc_only.coverage());
}

TEST(Campaign, ClassificationIsIdenticalAcrossEngineTiers) {
    // The differential acceptance check: the same seeded burst campaign
    // must produce bit-identical per-injection outcomes on all tiers.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 17;
    cfg.injections = 16;
    cfg.ecc = true;
    cfg.burst_len = 3;
    cfg.reg_burst = 2;
    cfg.reg_protection = core::RegProtection::Parity;
    cfg.checkpoint = true;
    sweep::SweepRunner pool;

    cfg.engine = cluster::SimEngine::Reference;
    const auto ref = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Fast;
    const auto fast = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Trace;
    const auto trace = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    ASSERT_EQ(ref.runs.size(), fast.runs.size());
    ASSERT_EQ(ref.runs.size(), trace.runs.size());
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
        EXPECT_EQ(ref.runs[i].outcome, fast.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].outcome, trace.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].cycles, fast.runs[i].cycles) << i;
        EXPECT_EQ(ref.runs[i].cycles, trace.runs[i].cycles) << i;
    }
    EXPECT_EQ(ref.counts, fast.counts);
    EXPECT_EQ(ref.counts, trace.counts);
}

TEST(Campaign, ShardedCountsSumToUnshardedRun) {
    // Satellite 1, in process: shard K/N runs the global indices congruent
    // to K mod N with globally-derived seeds, so summing shard counts must
    // reproduce the unsharded table exactly.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 29;
    cfg.injections = 18;
    cfg.ecc = true;
    cfg.burst_len = 3;
    sweep::SweepRunner pool;

    const auto full = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    std::array<unsigned, kOutcomeCount> summed{};
    std::vector<std::string> sharded_faults;
    cfg.shard_count = 3;
    for (unsigned k = 0; k < 3; ++k) {
        cfg.shard_index = k;
        const auto shard = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
        EXPECT_EQ(shard.runs.size(), 6u);
        for (unsigned o = 0; o < kOutcomeCount; ++o) summed[o] += shard.counts[o];
        for (const auto& rec : shard.runs) sharded_faults.push_back(rec.fault.describe());
    }
    EXPECT_EQ(summed, full.counts);
    std::vector<std::string> full_faults;
    for (const auto& rec : full.runs) full_faults.push_back(rec.fault.describe());
    std::sort(full_faults.begin(), full_faults.end());
    std::sort(sharded_faults.begin(), sharded_faults.end());
    EXPECT_EQ(full_faults, sharded_faults) << "shards partition the global draw set";
}

TEST(StreamingCampaign, ProtectedBurstCampaignHasZeroSdc) {
    // The headline acceptance criterion: ECC + register parity +
    // generalized checkpointing drives the MBU/burst campaign to zero
    // silent data corruptions on the streaming workload.
    const app::StreamingBenchmark s({.use_barrier = true}, 2);
    CampaignConfig cfg;
    cfg.seed = 42;
    cfg.injections = 10;
    cfg.ecc = true;
    cfg.burst_len = 3;
    cfg.reg_burst = 2;
    cfg.reg_protection = core::RegProtection::Parity;
    cfg.checkpoint = true;
    sweep::SweepRunner pool;
    const auto r = run_streaming_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);
    EXPECT_EQ(r.count(Outcome::Sdc), 0u);
    EXPECT_EQ(r.runs.size(), 10u);
    EXPECT_GT(r.checkpoints, 0u) << "every block boundary is a recovery point";
}

TEST(PowerModel, ProtectionAddersMatchCalibration) {
    // The priced layer: parity and TMR are per-op core adders, checkpoint
    // traffic is a DM adder proportional to words saved per op.
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    power::EventRates r;
    r.im_bank_accesses = 0.2;
    r.ixbar_requests = 1.0;
    r.dm_bank_accesses = 0.4;
    r.dxbar_requests = 0.4;
    r.ops_per_cycle = 7.0;

    const auto none = model.energy_per_op(r);
    r.reg_protection = core::RegProtection::Parity;
    const auto parity = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(parity.cores, none.cores + power::cal::kRegParityEnergyPerOp);
    EXPECT_DOUBLE_EQ(parity.dm, none.dm);

    r.reg_protection = core::RegProtection::Tmr;
    const auto tmr = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(tmr.cores, none.cores + power::cal::kRegTmrEnergyPerOp);
    EXPECT_GT(power::cal::kRegTmrEnergyPerOp, power::cal::kRegParityEnergyPerOp)
        << "TMR must cost more than parity: that is the §9 trade-off";

    r.reg_protection = core::RegProtection::None;
    r.checkpoint_words_per_op = 0.25;
    const auto ckpt = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(ckpt.dm, none.dm + 0.25 * power::cal::kCheckpointWordEnergy);
    EXPECT_DOUBLE_EQ(ckpt.cores, none.cores);
}

} // namespace
} // namespace ulpmc::fault
