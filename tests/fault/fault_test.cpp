// Fault-injector and campaign tests (DESIGN.md §9): seed determinism,
// thread-count independence, glitch absorption, the SDC-vs-ECC acceptance
// behavior, and the calibrated ECC energy overhead.
#include <gtest/gtest.h>

#include "app/benchmark.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "power/calibration.hpp"
#include "power/power_model.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::fault {
namespace {

FaultUniverse test_universe() {
    FaultUniverse u;
    u.text_words = 200;
    u.dm_words = 1000;
    u.cores = 8;
    u.window = 50'000;
    return u;
}

TEST(FaultInjector, SameSeedSameDrawSequence) {
    FaultInjector a(123), b(123), c(124);
    const auto u = test_universe();
    bool any_differs_from_c = false;
    for (int i = 0; i < 64; ++i) {
        const auto fa = a.draw(u), fb = b.draw(u), fc = c.draw(u);
        EXPECT_EQ(fa.describe(), fb.describe());
        if (fa.describe() != fc.describe()) any_differs_from_c = true;
    }
    EXPECT_TRUE(any_differs_from_c) << "different seeds must diverge";
}

TEST(FaultInjector, DrawRespectsKindMask) {
    FaultInjector inj(9);
    auto u = test_universe();
    u.kinds = fault_bit(FaultKind::RegUpset) | fault_bit(FaultKind::DXbarGlitch);
    for (int i = 0; i < 64; ++i) {
        const auto f = inj.draw(u);
        EXPECT_TRUE(f.kind == FaultKind::RegUpset || f.kind == FaultKind::DXbarGlitch);
    }
}

TEST(FaultInjector, MixSeedSeparatesStreams) {
    EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
    EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
    EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

TEST(FaultInjector, XbarGlitchIsAbsorbedByStallRetry) {
    // An arbitration glitch costs cycles, never correctness: the glitched
    // run ends with the same architectural state as the clean one.
    const auto prog = isa::assemble(R"(
        movi r1, 100        ; shared read-only word: every core competes
        movi r4, 600        ; private accumulator slot
        movi r2, 16
    loop:
        mov  r3, @r1
        add  r5, r5, r3
        mov  @r4, r5
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    constexpr mmu::DmLayout layout{.shared_words = 512, .private_words_per_core = 512};
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcInt, layout);

    cluster::Cluster clean(cfg, prog);
    clean.dm_poke(0, 100, 5);
    clean.run(100'000);

    for (const auto kind :
         {xbar::Glitch::Kind::DroppedGrant, xbar::Glitch::Kind::SpuriousDenial}) {
        for (const bool instruction_side : {true, false}) {
            cluster::Cluster gl(cfg, prog);
            gl.dm_poke(0, 100, 5);
            gl.run(20);
            gl.inject_xbar_glitch(instruction_side, xbar::Glitch{kind, 2});
            gl.run(100'000);
            for (unsigned p = 0; p < cfg.cores; ++p) {
                const auto pid = static_cast<CoreId>(p);
                ASSERT_EQ(gl.core_trap(pid), core::Trap::None);
                ASSERT_TRUE(gl.core_halted(pid));
                ASSERT_EQ(gl.core_state(pid).regs, clean.core_state(pid).regs);
                ASSERT_EQ(gl.dm_peek(pid, 600), clean.dm_peek(pid, 600));
            }
        }
    }
}

TEST(Campaign, ReproducibleAcrossThreadCounts) {
    // The acceptance contract: same seed -> same per-injection fault and
    // classification, bit for bit, regardless of parallelism.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.injections = 16;
    cfg.ecc = true;

    sweep::SweepRunner serial(1), parallel(4);
    const auto a = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, serial);
    const auto b = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, parallel);

    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].fault.describe(), b.runs[i].fault.describe()) << i;
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
        EXPECT_EQ(a.runs[i].cycles, b.runs[i].cycles) << i;
    }
    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, EccTurnsDmSdcIntoCorrections) {
    // Acceptance (a): at least one strike that is silent data corruption
    // with ECC off is corrected by SEC-DED — same seeds, same strikes.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 7;
    cfg.injections = 48;
    cfg.kinds = fault_bit(FaultKind::DmBitFlip);
    sweep::SweepRunner pool;

    cfg.ecc = false;
    const auto off = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.ecc = true;
    const auto on = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    ASSERT_GE(off.count(Outcome::Sdc), 1u) << "campaign must surface SDCs with ECC off";
    EXPECT_EQ(on.count(Outcome::Sdc), 0u) << "every DM SEU is inside SEC-DED's reach";
    EXPECT_GE(on.count(Outcome::Corrected), off.count(Outcome::Sdc));
    EXPECT_GT(on.coverage(), off.coverage());
}

TEST(Campaign, EccEnergyOverheadMatchesCalibration) {
    // Acceptance (c): the campaign's energy numbers are exactly what the
    // calibration constants prescribe — access factors on the IM/DM
    // components plus the per-correction scrub energy.
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    power::EventRates r;
    r.im_bank_accesses = 0.2;
    r.ixbar_requests = 1.0;
    r.dm_bank_accesses = 0.4;
    r.dxbar_requests = 0.4;
    r.ops_per_cycle = 7.0;

    const auto off = model.energy_per_op(r);
    r.ecc = true;
    const auto on = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(on.im, off.im * power::cal::kEccImAccessFactor);
    EXPECT_DOUBLE_EQ(on.dm, off.dm * power::cal::kEccDmAccessFactor);
    EXPECT_DOUBLE_EQ(on.cores, off.cores);

    r.ecc_corrections = 0.01;
    const auto scrub = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(scrub.dm, on.dm + 0.01 * power::cal::kEccCorrectionEnergy);
}

TEST(Campaign, EccFaultTrapIsRaisedOnDoubleBitUpset) {
    // flip_bits = 2 exercises the detection (not correction) path: the
    // striken core must fail-stop with the dedicated trap, not corrupt.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 3;
    cfg.injections = 32;
    cfg.ecc = true;
    cfg.flip_bits = 2;
    cfg.kinds = fault_bit(FaultKind::DmBitFlip);
    sweep::SweepRunner pool;
    const auto r = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    EXPECT_EQ(r.count(Outcome::Sdc), 0u);
    EXPECT_GE(r.count(Outcome::Trapped), 1u);
    unsigned ecc_traps = 0;
    for (const auto& rec : r.runs) {
        if (rec.outcome == Outcome::Trapped && rec.trap == core::Trap::EccFault) ++ecc_traps;
    }
    EXPECT_GE(ecc_traps, 1u);
}

TEST(FaultInjector, CkptBitFlipIsOptInAndDrawsInsideTheUniverse) {
    // The legacy universe must not draw the storage kind (committed
    // campaign baselines reproduce their draw sequences bit-exactly).
    FaultInjector legacy(11);
    for (int i = 0; i < 64; ++i)
        EXPECT_NE(legacy.draw(test_universe()).kind, FaultKind::CkptBitFlip);

    FaultInjector inj(11);
    auto u = test_universe();
    u.kinds = kCkptFaultKinds;
    u.ckpt_words = 96;
    for (int i = 0; i < 64; ++i) {
        const auto f = inj.draw(u);
        EXPECT_EQ(f.kind, FaultKind::CkptBitFlip);
        EXPECT_LT(f.ckpt_record, 3u);
        EXPECT_LT(f.ckpt_word, 96u);
        EXPECT_NE(f.flip_mask, 0u);
        EXPECT_NE(f.describe().find("ckpt-bit-flip"), std::string::npos);
    }
}

TEST(FaultInjector, CkptBitFlipStrikesStoredRecordsOnly) {
    const auto prog = isa::assemble(R"(
        movi r1, 70
        movi r2, 200
    loop:
        mov  r3, @r1
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank,
                                    {.shared_words = 64, .private_words_per_core = 256});
    cfg.cores = 1;
    cluster::Cluster cl(cfg, prog);
    cl.run(57);
    cluster::Cluster::Snapshot snap;
    cl.save(snap);

    cluster::CheckpointStorage store;
    store.reset({});

    FaultSpec f;
    f.kind = FaultKind::CkptBitFlip;
    f.ckpt_record = 7; // wraps into whatever exists at strike time
    f.ckpt_word = 12345;
    f.flip_mask = 0x20;
    FaultInjector::apply(store, f); // empty store: must be a harmless no-op
    FaultInjector::apply(cl, f);    // cluster overload: no-op for this kind
    EXPECT_TRUE(cl.state_equals(snap));

    store.store(snap);
    FaultInjector::apply(store, f);
    cluster::Cluster::Snapshot out;
    EXPECT_FALSE(store.load(out)) << "the strike must land in the record and trip the CRC";
    EXPECT_EQ(store.stats().crc_failures, 1u);
}

} // namespace
} // namespace ulpmc::fault
