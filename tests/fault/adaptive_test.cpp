// Adaptive-resilience tests (DESIGN.md §9): the self-tuning checkpoint
// controller recovers every strike of the two-phase campaign while
// spending less overhead energy than mis-tuned fixed intervals, its
// classification is bit-identical across the three engine tiers, arbiter
// sequential-state upsets are a real silent-corruption channel that the
// self-checking arbiter closes, the idle-cycle IM scrub walker drains the
// latent-upset population that only it can reach, and both new protection
// layers are priced in the calibrated energy model.
#include <gtest/gtest.h>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/cluster.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "power/calibration.hpp"
#include "power/power_model.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::fault {
namespace {

/// The bench's quiet-lead/burst-tail environment (ext_fault_adaptive) in
/// miniature: strikes on parity-protected register files, every consumed
/// one a detected trap the checkpoint layer replays.
CampaignConfig two_phase_config() {
    CampaignConfig cfg;
    cfg.seed = 42;
    cfg.injections = 3;
    cfg.ecc = true;
    cfg.reg_protection = core::RegProtection::Parity;
    cfg.kinds = fault_bit(FaultKind::RegUpset);
    cfg.checkpoint = true;
    cfg.lambda_low = 1e-5;
    cfg.lambda_high = 1e-3;
    return cfg;
}

TEST(AdaptiveCheckpoint, BeatsMisTunedFixedIntervalsAtZeroSdc) {
    // The tentpole acceptance criterion (the full ladder is
    // bench/ext_fault_adaptive): on an environment whose rate spans two
    // decades, the self-tuning controller must recover every strike AND
    // spend less checkpoint+re-execution energy than a fixed interval
    // tuned for either phase alone.
    const app::StreamingBenchmark s({.use_barrier = true}, 3);
    sweep::SweepRunner pool;
    auto cfg = two_phase_config();

    cfg.checkpoint_interval = 200; // burst-tuned: save spam over the quiet lead
    const auto fixed_short = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.checkpoint_interval = 6'000; // quiet-tuned: long replays under the burst
    const auto fixed_long = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.adaptive_checkpoint = true;
    cfg.checkpoint_interval = 2'000;
    const auto adaptive = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);

    EXPECT_EQ(adaptive.count(Outcome::Sdc), 0u);
    EXPECT_DOUBLE_EQ(adaptive.coverage(), 1.0);
    EXPECT_GT(adaptive.strikes, 0u);
    EXPECT_GT(adaptive.interval_updates, 0u) << "the controller must actually re-tune";
    EXPECT_GT(adaptive.overhead_energy, 0.0);
    EXPECT_LT(adaptive.overhead_energy, fixed_short.overhead_energy);
    EXPECT_LT(adaptive.overhead_energy, fixed_long.overhead_energy);
}

TEST(AdaptiveCheckpoint, CampaignIsIdenticalAcrossEngineTiers) {
    // The adaptive controller closes the loop THROUGH the simulator
    // (observed events -> interval -> execution schedule), so any tier
    // divergence would compound; per-run outcome, cycles, strike count
    // and controller telemetry must stay bit-identical.
    const app::StreamingBenchmark s({.use_barrier = true}, 2);
    sweep::SweepRunner pool;
    auto cfg = two_phase_config();
    cfg.injections = 2;
    cfg.adaptive_checkpoint = true;
    cfg.checkpoint_interval = 1'000;

    cfg.engine = cluster::SimEngine::Reference;
    const auto ref = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Fast;
    const auto fast = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Trace;
    const auto trace = run_adaptive_campaign(s, cluster::ArchKind::UlpmcBank, cfg, pool);

    ASSERT_EQ(ref.runs.size(), fast.runs.size());
    ASSERT_EQ(ref.runs.size(), trace.runs.size());
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
        EXPECT_EQ(ref.runs[i].outcome, fast.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].outcome, trace.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].cycles, fast.runs[i].cycles) << i;
        EXPECT_EQ(ref.runs[i].cycles, trace.runs[i].cycles) << i;
        EXPECT_EQ(ref.runs[i].strikes, trace.runs[i].strikes) << i;
        EXPECT_EQ(ref.runs[i].checkpoints, trace.runs[i].checkpoints) << i;
        EXPECT_EQ(ref.runs[i].reexec_cycles, trace.runs[i].reexec_cycles) << i;
    }
    EXPECT_EQ(ref.counts, fast.counts);
    EXPECT_EQ(ref.counts, trace.counts);
    EXPECT_EQ(ref.interval_updates, trace.interval_updates);
    EXPECT_DOUBLE_EQ(ref.overhead_energy, trace.overhead_energy);
}

TEST(ArbiterUpset, SelfCheckClosesTheSilentCorruptionChannel) {
    // Arbiter sequential-state upsets (stuck round-robin pointer, flipped
    // grant register) slip past the stall/retry protocol: the unprotected
    // campaign must show at least one non-benign outcome, and the
    // self-checking arbiter must convert every one into a counted repair.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 42;
    cfg.injections = 16;
    cfg.kinds = kArbiterFaultKinds;
    sweep::SweepRunner pool;
    const auto plain = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.xbar_self_check = true;
    const auto checked = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    EXPECT_GT(plain.count(Outcome::Sdc) + plain.count(Outcome::Hang) +
                  plain.count(Outcome::Trapped),
              0u)
        << "the unprotected arbiter must be a real failure channel";
    EXPECT_EQ(checked.count(Outcome::Sdc), 0u);
    EXPECT_EQ(checked.count(Outcome::Hang), 0u);
    EXPECT_GE(checked.count(Outcome::Corrected), 1u)
        << "repairs must be visible as counted self-check events";
    EXPECT_GE(checked.coverage(), plain.coverage());
}

TEST(ArbiterUpset, ClassificationIsIdenticalAcrossEngineTiers) {
    // A pending arbiter-state upset must force the trace engine off its
    // superblock fast path until consumed or repaired: per-injection
    // outcome AND cycle count stay bit-identical across tiers.
    const app::EcgBenchmark bench{};
    CampaignConfig cfg;
    cfg.seed = 19;
    cfg.injections = 12;
    cfg.kinds = kArbiterFaultKinds;
    cfg.xbar_self_check = true;
    sweep::SweepRunner pool;

    cfg.engine = cluster::SimEngine::Reference;
    const auto ref = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Fast;
    const auto fast = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    cfg.engine = cluster::SimEngine::Trace;
    const auto trace = run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);

    ASSERT_EQ(ref.runs.size(), fast.runs.size());
    ASSERT_EQ(ref.runs.size(), trace.runs.size());
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
        EXPECT_EQ(ref.runs[i].outcome, fast.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].outcome, trace.runs[i].outcome) << i;
        EXPECT_EQ(ref.runs[i].cycles, fast.runs[i].cycles) << i;
        EXPECT_EQ(ref.runs[i].cycles, trace.runs[i].cycles) << i;
    }
    EXPECT_EQ(ref.counts, fast.counts);
    EXPECT_EQ(ref.counts, trace.counts);
}

TEST(ImScrub, WalkerDrainsLatentUpsetsOnlyItCanReach) {
    // Single-bit upsets seeded in instruction words past the halt: no
    // demand fetch ever touches them, so only the background walker can
    // repair them. The walker steals exactly the cycles in which a bank
    // serves no demand fetch — under the interleaved organization most
    // banks idle most cycles, and barrier-parked or early-halted cores
    // (the two staggered phases below) donate their fetch slots too.
    const auto prog = isa::assemble(R"(
        movi r1, 70
        mov  r2, @r1
    p1: sub  r2, r2, #1
        bra  ne, p1
        movi r14, 65535
        mov  @r14, r0
        movi r1, 71
        mov  r2, @r1
    p2: sub  r2, r2, #1
        bra  ne, p2
        hlt
        add  r4, r4, #1
        add  r4, r4, #1
    )");
    constexpr mmu::DmLayout layout{.shared_words = 64, .private_words_per_core = 256};
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcInt, layout);
    cfg.cores = 2;
    cfg.barrier_enabled = true;
    cfg.ecc_enabled = true;

    for (const bool scrub : {false, true}) {
        auto c = cfg;
        c.im_scrub = scrub;
        cluster::Cluster cl(c, prog);
        // Phase 1: core 0 counts long, core 1 parks at the barrier (bank 1
        // idles); phase 2: core 0 halts early, core 1 counts (bank 0 idles).
        cl.dm_poke(0, 70, 3000);
        cl.dm_poke(1, 70, 5);
        cl.dm_poke(0, 71, 5);
        cl.dm_poke(1, 71, 3000);
        const auto pad = static_cast<PAddr>(prog.text.size() - 2);
        cl.inject_im_fault(pad, 0x1);
        cl.inject_im_fault(pad + 1, 0x1);
        const auto seeded = cl.im_latent_upsets();
        ASSERT_GE(seeded, 2u) << "each ungated replica holds the latent pair";

        cl.run(100'000);
        ASSERT_TRUE(cl.core_halted(0));
        ASSERT_TRUE(cl.core_halted(1));
        if (scrub) {
            EXPECT_EQ(cl.im_latent_upsets(), 0u) << "the walker must drain the population";
            EXPECT_GE(cl.stats().im_scrub_corrected, seeded);
            EXPECT_GT(cl.stats().im_scrub_reads, 0u) << "walker reads are counted (and priced)";
        } else {
            EXPECT_EQ(cl.im_latent_upsets(), seeded) << "no walker, no repair";
            EXPECT_EQ(cl.stats().im_scrub_reads, 0u);
        }
    }
}

TEST(DmScrub, WalkerDrainsLatentDmUpsetsOnlyItCanReach) {
    // Single-bit upsets seeded in DM words outside the working set: no
    // demand access ever touches them, so only the background DM walker
    // can repair them. After the initial counter load the countdown loop
    // performs no DM traffic, so every bank donates every cycle and the
    // per-bank walkers sweep their full word range well inside the run.
    const auto prog = isa::assemble(R"(
        movi r1, 70
        mov  r2, @r1
    lp: sub  r2, r2, #1
        bra  ne, lp
        hlt
    )");
    constexpr mmu::DmLayout layout{.shared_words = 64, .private_words_per_core = 256};
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, layout);
    cfg.cores = 2;
    cfg.ecc_enabled = true;

    for (const bool scrub : {false, true}) {
        auto c = cfg;
        c.dm_scrub = scrub;
        cluster::Cluster cl(c, prog);
        cl.dm_poke(0, 70, 3000);
        cl.dm_poke(1, 70, 3000);
        cl.inject_dm_fault(0, 100, 0x1);
        cl.inject_dm_fault(1, 120, 0x2);
        const auto seeded = cl.dm_latent_upsets();
        ASSERT_EQ(seeded, 2u);

        cl.run(100'000);
        ASSERT_TRUE(cl.core_halted(0));
        ASSERT_TRUE(cl.core_halted(1));
        if (scrub) {
            EXPECT_EQ(cl.dm_latent_upsets(), 0u) << "the walker must drain the population";
            EXPECT_GE(cl.stats().dm_scrub_corrected, seeded);
            EXPECT_GT(cl.stats().dm_scrub_reads, 0u) << "walker reads are counted (and priced)";
        } else {
            EXPECT_EQ(cl.dm_latent_upsets(), seeded) << "no walker, no repair";
            EXPECT_EQ(cl.stats().dm_scrub_reads, 0u);
        }
    }
}

TEST(DmScrub, WalkerPointerRidesSnapshotRollback) {
    // The per-bank walker pointers are architectural state for replay:
    // a rollback that did not restore them would scrub different words on
    // re-execution and diverge from the straight-through run. Save
    // mid-flight, run on, roll back, and the replay must land on stats
    // bit-identical to an undisturbed run.
    const auto prog = isa::assemble(R"(
        movi r1, 70
        mov  r2, @r1
    lp: sub  r2, r2, #1
        bra  ne, lp
        hlt
    )");
    constexpr mmu::DmLayout layout{.shared_words = 64, .private_words_per_core = 256};
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, layout);
    cfg.cores = 1;
    cfg.ecc_enabled = true;
    cfg.dm_scrub = true;

    const auto seed = [&](cluster::Cluster& cl) {
        cl.dm_poke(0, 70, 3000);
        cl.inject_dm_fault(0, 100, 0x1);
    };
    cluster::Cluster straight(cfg, prog);
    seed(straight);
    straight.run(100'000);
    ASSERT_TRUE(straight.core_halted(0));

    cluster::Cluster cl(cfg, prog);
    seed(cl);
    cl.run(500);
    cluster::Cluster::Snapshot snap;
    cl.save(snap);
    cl.run(4'000);
    cl.restore(snap);
    EXPECT_TRUE(cl.state_equals(snap)) << "restore must bring the walker pointers back";
    cl.run(100'000);
    EXPECT_EQ(cl.stats(), straight.stats());
    EXPECT_EQ(cl.dm_latent_upsets(), 0u);
}

TEST(PowerModel, ScrubAndSelfCheckAddersMatchCalibration) {
    // Both new layers are priced, not free: scrub-walker reads are IM bank
    // activations, the arbiter checker toggles every armed cycle on each
    // crossbar.
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    power::EventRates r;
    r.im_bank_accesses = 0.2;
    r.ixbar_requests = 1.0;
    r.dm_bank_accesses = 0.4;
    r.dxbar_requests = 0.4;
    r.ops_per_cycle = 7.0;

    const auto base = model.energy_per_op(r);
    r.im_scrub_reads = 0.5;
    const auto scrub = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(scrub.im, base.im + 0.5 * power::cal::kImScrubReadEnergy);
    EXPECT_DOUBLE_EQ(scrub.dm, base.dm);

    r.im_scrub_reads = 0;
    r.dm_scrub_reads = 0.25;
    const auto dm_scrub = model.energy_per_op(r);
    EXPECT_DOUBLE_EQ(dm_scrub.dm, base.dm + 0.25 * power::cal::kDmScrubReadEnergy);
    EXPECT_DOUBLE_EQ(dm_scrub.im, base.im);

    r.dm_scrub_reads = 0;
    r.xbar_self_check = true;
    const auto checked = model.energy_per_op(r);
    const double per_op = power::cal::kXbarSelfCheckEnergyPerCycle / r.ops_per_cycle;
    EXPECT_DOUBLE_EQ(checked.dxbar, base.dxbar + per_op);
    EXPECT_DOUBLE_EQ(checked.ixbar, base.ixbar + per_op) << "both crossbars carry a checker";
    EXPECT_DOUBLE_EQ(checked.im, base.im);
}

} // namespace
} // namespace ulpmc::fault
