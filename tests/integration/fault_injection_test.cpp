// Failure injection: corrupting state that real silicon could corrupt
// (soft errors in instruction/data SRAM) must never be silently accepted —
// either the core traps or the end-to-end verification catches the wrong
// output. This test guards the verification harness itself.
#include <gtest/gtest.h>

#include "app/benchmark.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::app {
namespace {

using cluster::ArchKind;

TEST(FaultInjection, CorruptedInstructionNeverVerifiesSilently) {
    const EcgBenchmark bench{};
    Rng rng(515);
    int traps_or_mismatch = 0;
    constexpr int kTrials = 6;
    for (int trial = 0; trial < kTrials; ++trial) {
        // Flip one random bit in one random instruction of the image.
        isa::Program prog = bench.program();
        const std::size_t idx = rng.below(static_cast<std::uint32_t>(prog.text.size()));
        prog.text[idx] ^= 1u << rng.below(24);

        cluster::Cluster cl(cluster::make_config(ArchKind::UlpmcBank, bench.layout().dm_layout()),
                            prog);
        for (unsigned p = 0; p < kNumCores; ++p) {
            const auto& x = bench.lead_samples(p);
            for (std::size_t i = 0; i < x.size(); ++i)
                cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(bench.layout().x_base() + i),
                           static_cast<Word>(x[i]));
        }
        cl.run(2'000'000);

        bool anomaly = false;
        for (unsigned p = 0; p < kNumCores; ++p) {
            if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None) anomaly = true;
            if (!cl.core_halted(static_cast<CoreId>(p))) anomaly = true; // hang/livelock
        }
        if (!anomaly) {
            // Ran to completion: outputs must differ from golden somewhere
            // (a bit flip in a live instruction cannot be a no-op for this
            // program — every instruction contributes), so compare.
            bool any_diff = false;
            for (unsigned p = 0; p < kNumCores && !any_diff; ++p) {
                const auto& golden = bench.golden_bitstream(p).words;
                const Word n = cl.dm_peek(static_cast<CoreId>(p), bench.layout().out_count());
                if (n != golden.size()) {
                    any_diff = true;
                    break;
                }
                for (Word i = 0; i < n; ++i) {
                    if (cl.dm_peek(static_cast<CoreId>(p),
                                   static_cast<Addr>(bench.layout().out_base() + i)) !=
                        golden[i]) {
                        any_diff = true;
                        break;
                    }
                }
            }
            anomaly = any_diff;
        }
        traps_or_mismatch += anomaly;
    }
    // Nearly every injected fault must be observable; one silent survivor
    // is tolerated because the kernel contains one architecturally dead
    // store (the compiler-style acc write-through) whose addressing bits
    // a flip can change without affecting any output.
    EXPECT_GE(traps_or_mismatch, kTrials - 1);
}

TEST(FaultInjection, CorruptedSharedMatrixIsCaughtByVerification) {
    const EcgBenchmark bench{};
    isa::Program prog = bench.program();
    prog.data[1234] ^= 0x0100; // one bit of the CS matrix
    cluster::Cluster cl(cluster::make_config(ArchKind::UlpmcInt, bench.layout().dm_layout()),
                        prog);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto& x = bench.lead_samples(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(bench.layout().x_base() + i),
                       static_cast<Word>(x[i]));
    }
    cl.run();
    bool diff = false;
    for (unsigned p = 0; p < kNumCores && !diff; ++p) {
        for (std::size_t i = 0; i < kCsOutputLen; ++i) {
            if (cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(bench.layout().y_base() + i)) !=
                bench.golden_measurements(p)[i]) {
                diff = true;
                break;
            }
        }
    }
    EXPECT_TRUE(diff);
}

TEST(FaultInjection, WholeProgramDisassemblyReassemblesIdentically) {
    // Toolchain stress: disassemble the full benchmark image and push it
    // back through the text assembler — every word must survive.
    const EcgBenchmark bench{};
    std::string source;
    for (std::size_t pc = 0; pc < bench.program().text.size(); ++pc) {
        const auto in = isa::decode(bench.program().text[pc]);
        ASSERT_TRUE(in.has_value());
        source += isa::disassemble(*in, static_cast<PAddr>(pc));
        source += '\n';
    }
    const isa::Program back = isa::assemble(source);
    EXPECT_EQ(back.text, bench.program().text);
}

} // namespace
} // namespace ulpmc::app
