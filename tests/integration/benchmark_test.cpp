// End-to-end integration: the full 8-lead ECG benchmark on all three
// architectures, verified bit-exactly against the golden host pipeline,
// plus the barrier extension and both LUT placements.
#include <gtest/gtest.h>

#include "app/benchmark.hpp"

namespace ulpmc::app {
namespace {

using cluster::ArchKind;

class BenchmarkOnArch : public ::testing::TestWithParam<ArchKind> {};

TEST_P(BenchmarkOnArch, VerifiesBitExactly) {
    const EcgBenchmark bench{};
    const auto out = bench.run(GetParam());
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.bitstreams.size(), kEcgLeads);
    for (unsigned p = 0; p < kEcgLeads; ++p)
        EXPECT_EQ(out.bitstreams[p].words, bench.golden_bitstream(p).words) << "lead " << p;
}

TEST_P(BenchmarkOnArch, SharedLutVariantVerifies) {
    BenchmarkOptions opt;
    opt.luts_shared = true;
    const EcgBenchmark bench(opt);
    EXPECT_TRUE(bench.run(GetParam()).verified);
}

TEST_P(BenchmarkOnArch, BarrierVariantVerifies) {
    BenchmarkOptions opt;
    opt.use_barrier = true;
    const EcgBenchmark bench(opt);
    EXPECT_TRUE(bench.run(GetParam()).verified);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, BenchmarkOnArch,
                         ::testing::Values(ArchKind::McRef, ArchKind::UlpmcInt,
                                           ArchKind::UlpmcBank),
                         [](const auto& info) {
                             std::string n = cluster::arch_name(info.param);
                             n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
                             return n;
                         });

TEST(Benchmark, CompressionIsUseful) {
    const EcgBenchmark bench{};
    const auto out = bench.run(ArchKind::UlpmcBank);
    // CS halves the block; Huffman squeezes the 9-bit symbols further:
    // well under 8 bits per original sample, and nonzero.
    EXPECT_GT(out.bits_per_sample, 1.0);
    EXPECT_LT(out.bits_per_sample, 8.0);
}

TEST(Benchmark, DifferentSeedsProduceDifferentStreamsButVerify) {
    BenchmarkOptions opt;
    opt.seed = 99;
    const EcgBenchmark bench(opt);
    const EcgBenchmark base{};
    EXPECT_NE(bench.golden_bitstream(0).words, base.golden_bitstream(0).words);
    EXPECT_TRUE(bench.run(ArchKind::UlpmcInt).verified);
}

TEST(Benchmark, LeadsProduceDistinctStreams) {
    const EcgBenchmark bench{};
    const auto out = bench.run(ArchKind::UlpmcBank);
    EXPECT_NE(out.bitstreams[0].words, out.bitstreams[1].words);
}

TEST(Benchmark, DeterministicAcrossRuns) {
    const EcgBenchmark bench{};
    const auto a = bench.run(ArchKind::UlpmcBank);
    const auto b = bench.run(ArchKind::UlpmcBank);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.im_bank_accesses, b.stats.im_bank_accesses);
}

TEST(Benchmark, BarrierKeepsCyclesComparable) {
    // The barrier is one extra lockstep store: it must not change the
    // cycle count by more than a sliver, while guaranteeing resync.
    const EcgBenchmark plain{};
    BenchmarkOptions opt;
    opt.use_barrier = true;
    const EcgBenchmark barrier(opt);
    const auto a = plain.run(ArchKind::UlpmcBank);
    const auto b = barrier.run(ArchKind::UlpmcBank);
    EXPECT_NEAR(static_cast<double>(b.stats.cycles), static_cast<double>(a.stats.cycles),
                0.01 * static_cast<double>(a.stats.cycles));
}

} // namespace
} // namespace ulpmc::app
