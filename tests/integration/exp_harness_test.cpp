// Tests for the shared experiment harness: every bench binary leans on
// characterize()'s verified-run contract and the comparison formatters.
#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include <iostream>

#include "exp/experiments.hpp"

namespace ulpmc::exp {
namespace {

TEST(ExpHarness, CharacterizeProducesConsistentRates) {
    const app::EcgBenchmark bench{};
    const auto dp = characterize(cluster::ArchKind::UlpmcBank, bench);
    EXPECT_TRUE(dp.outcome.verified);
    EXPECT_GT(dp.rates.ops_per_cycle, 1.0);
    EXPECT_LE(dp.rates.ops_per_cycle, 8.0);
    EXPECT_GT(dp.rates.im_bank_accesses, 0.0);
    EXPECT_LT(dp.rates.im_bank_accesses, 1.0); // broadcast must merge
    EXPECT_EQ(dp.rates.im_banks_gated, 7u);
}

TEST(ExpHarness, CharacterizeAllReturnsPaperOrder) {
    const app::EcgBenchmark bench{};
    const auto all = characterize_all(bench);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].arch, cluster::ArchKind::McRef);
    EXPECT_EQ(all[1].arch, cluster::ArchKind::UlpmcInt);
    EXPECT_EQ(all[2].arch, cluster::ArchKind::UlpmcBank);
    // The architectural ordering of IM traffic is invariant.
    EXPECT_GT(all[0].rates.im_bank_accesses, 5 * all[1].rates.im_bank_accesses);
    EXPECT_GE(all[1].rates.im_bank_accesses, all[2].rates.im_bank_accesses);
}

TEST(ExpHarness, VsPaperFormatting) {
    EXPECT_EQ(vs_paper_percent(0.394, 39.5), "39.4% (paper 39.5%)");
    EXPECT_EQ(vs_paper_count(90180, 90200.0), "90,180 (paper 90,200)");
}

TEST(ExpHarness, HeaderNamesThePaper) {
    std::ostringstream captured;
    auto* old = std::cout.rdbuf(captured.rdbuf());
    print_experiment_header("T", "Figure 9");
    std::cout.rdbuf(old);
    EXPECT_NE(captured.str().find("Figure 9"), std::string::npos);
    EXPECT_NE(captured.str().find("DATE 2012"), std::string::npos);
}

} // namespace
} // namespace ulpmc::exp
