// Regression-pins the paper's headline claims (EXPERIMENTS.md): if a
// refactor of the simulator or the power model breaks any reproduced
// number beyond its documented tolerance, these tests fail.
//
// One benchmark instance is shared across all tests (it is the expensive
// part); tolerances mirror the "paper vs measured" gaps recorded in
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

namespace ulpmc::exp {
namespace {

using cluster::ArchKind;

class PaperClaims : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        bench_ = new app::EcgBenchmark{};
        designs_ = new std::vector<DesignPoint>(characterize_all(*bench_));
    }
    static void TearDownTestSuite() {
        delete designs_;
        delete bench_;
        designs_ = nullptr;
        bench_ = nullptr;
    }

    static const DesignPoint& ref() { return (*designs_)[0]; }
    static const DesignPoint& ulpint() { return (*designs_)[1]; }
    static const DesignPoint& ulpbank() { return (*designs_)[2]; }

    static app::EcgBenchmark* bench_;
    static std::vector<DesignPoint>* designs_;
};

app::EcgBenchmark* PaperClaims::bench_ = nullptr;
std::vector<DesignPoint>* PaperClaims::designs_ = nullptr;

TEST_F(PaperClaims, CycleCountRatios) {
    // §IV-C2: ulpmc-int ~= mc-ref; ulpmc-bank ~+4% (paper 94.0k/90.2k).
    const double c_ref = static_cast<double>(ref().outcome.stats.cycles);
    const double c_int = static_cast<double>(ulpint().outcome.stats.cycles);
    const double c_bank = static_cast<double>(ulpbank().outcome.stats.cycles);
    EXPECT_NEAR(c_int / c_ref, 1.0, 0.02);
    EXPECT_GT(c_bank / c_ref, 1.01); // banked IM serializes after desync
    EXPECT_LT(c_bank / c_ref, 1.08);
}

TEST_F(PaperClaims, InstructionMemoryAccessReduction) {
    // mc-ref reads every instruction from all 8 dedicated banks; the
    // proposed designs broadcast: ~87% fewer accesses (720,800 -> 90,220).
    const auto& s_ref = ref().outcome.stats;
    const auto& s_int = ulpint().outcome.stats;
    std::uint64_t fetches = 0;
    for (const auto& c : s_ref.core) fetches += c.im_fetches;
    EXPECT_EQ(s_ref.im_bank_accesses, fetches); // one stream per core
    const double reduction =
        1.0 - static_cast<double>(s_int.im_bank_accesses) / static_cast<double>(s_ref.im_bank_accesses);
    EXPECT_NEAR(reduction, 0.87, 0.03);
}

TEST_F(PaperClaims, TableTwoActivePowerSavings) {
    // Table II: ulpmc-int 29.7%, ulpmc-bank 40.6% dynamic savings.
    const double w = 8e6;
    const power::PowerModel mref(ArchKind::McRef);
    const power::PowerModel mint(ArchKind::UlpmcInt);
    const power::PowerModel mbank(ArchKind::UlpmcBank);
    const double pr = mref.dynamic_power(ref().rates, w, power::cal::kVnom).total();
    const double pi = mint.dynamic_power(ulpint().rates, w, power::cal::kVnom).total();
    const double pb = mbank.dynamic_power(ulpbank().rates, w, power::cal::kVnom).total();
    EXPECT_NEAR(1.0 - pi / pr, 0.297, 0.03);
    EXPECT_NEAR(1.0 - pb / pr, 0.406, 0.03);
}

TEST_F(PaperClaims, FigThreePowerDistribution) {
    const power::PowerModel m(ArchKind::McRef);
    const auto p = m.dynamic_power(ref().rates, 8e6, power::cal::kVnom);
    EXPECT_NEAR(p.im / p.total(), 0.54, 0.02);
    EXPECT_NEAR(p.cores / p.total(), 0.27, 0.02);
    EXPECT_NEAR(p.dm / p.total(), 0.11, 0.02);
}

TEST_F(PaperClaims, FigSevenHighWorkloadSavings) {
    // 39.5% (bank) / 29.6% (int) at the highest common workload.
    const power::PowerModel mref(ArchKind::McRef);
    const power::PowerModel mint(ArchKind::UlpmcInt);
    const power::PowerModel mbank(ArchKind::UlpmcBank);
    const double w = std::min({mref.max_throughput(ref().rates),
                               mint.max_throughput(ulpint().rates),
                               mbank.max_throughput(ulpbank().rates)});
    const double pr = mref.power_at(ref().rates, w).total;
    EXPECT_NEAR(1.0 - mbank.power_at(ulpbank().rates, w).total / pr, 0.395, 0.025);
    EXPECT_NEAR(1.0 - mint.power_at(ulpint().rates, w).total / pr, 0.296, 0.025);
}

TEST_F(PaperClaims, FigSevenLowWorkloadSavings) {
    // At 5 kOps/s the cluster almost only leaks: bank keeps 38.8%,
    // int degenerates to ~mc-ref.
    const power::PowerModel mref(ArchKind::McRef);
    const power::PowerModel mint(ArchKind::UlpmcInt);
    const power::PowerModel mbank(ArchKind::UlpmcBank);
    const double pr = mref.power_at(ref().rates, 5e3).total;
    EXPECT_NEAR(1.0 - mbank.power_at(ulpbank().rates, 5e3).total / pr, 0.388, 0.03);
    EXPECT_NEAR(1.0 - mint.power_at(ulpint().rates, 5e3).total / pr, 0.0, 0.05);
}

TEST_F(PaperClaims, MaxThroughputsMatchPaper) {
    // 664.5 / 662.3 / 636.9 MOps/s at nominal voltage.
    const power::PowerModel m12ref(ArchKind::McRef);
    const power::PowerModel m12int(ArchKind::UlpmcInt);
    const power::PowerModel m12bank(ArchKind::UlpmcBank);
    EXPECT_NEAR(m12ref.max_throughput(ref().rates) / 1e6, 664.5, 8.0);
    EXPECT_NEAR(m12int.max_throughput(ulpint().rates) / 1e6, 662.3, 8.0);
    EXPECT_NEAR(m12bank.max_throughput(ulpbank().rates) / 1e6, 636.9, 8.0);
}

TEST_F(PaperClaims, FloorThroughputAroundTenMops) {
    const power::PowerModel m(ArchKind::McRef);
    const double floor = m.vf().f_max(power::cal::kVmin) * ref().rates.ops_per_cycle;
    EXPECT_NEAR(floor / 1e6, 10.0, 0.5);
}

TEST_F(PaperClaims, SharedAccessMixMatchesProfiling) {
    // §III-D: "76% private versus 24% shared" DM accesses. Our kernel
    // measures ~80/20 (documented in EXPERIMENTS.md).
    const auto& s = ref().outcome.stats;
    // Shared accesses = broadcastable matrix reads: approximate via the
    // known per-lead counts: 6144 shared reads of 6144+N total.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    for (const auto& c : s.core) {
        loads += c.dm_loads;
        stores += c.dm_stores;
    }
    const double shared_fraction = 8.0 * 6144.0 / static_cast<double>(loads + stores);
    EXPECT_NEAR(shared_fraction, 0.24, 0.06);
}

} // namespace
} // namespace ulpmc::exp
