// Geometry-generalization tests: the MMU with non-paper bank counts
// (the ext_bank_sweep design space) keeps all its invariants.
#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"
#include "mmu/mmu.hpp"

namespace ulpmc::mmu {
namespace {

constexpr DmLayout kLayout{.shared_words = 6144, .private_words_per_core = 3072};

TEST(MmuGeometry, FourBanksPerCoreAt32Banks) {
    const DataMmu m(kLayout, 2, 32, 1024);
    EXPECT_EQ(m.banks_per_core(), 4u);
    EXPECT_EQ(m.private_words_per_bank(), 768u);
}

TEST(MmuGeometry, PrivateDisjointnessHoldsAt32Banks) {
    std::vector<std::set<BankId>> banks(kNumCores);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const DataMmu m(kLayout, static_cast<CoreId>(p), 32, 1024);
        for (std::uint32_t v = 0; v < kLayout.private_words_per_core; v += 5) {
            const auto pa = m.translate(static_cast<Addr>(kLayout.private_base() + v));
            ASSERT_TRUE(pa.has_value());
            EXPECT_LT(pa->bank, 32);
            banks[p].insert(pa->bank);
        }
    }
    for (unsigned a = 0; a < kNumCores; ++a)
        for (unsigned b = a + 1; b < kNumCores; ++b)
            for (const BankId bank : banks[a]) EXPECT_EQ(banks[b].count(bank), 0u);
}

TEST(MmuGeometry, InjectiveAt32Banks) {
    const DataMmu m(kLayout, 7, 32, 1024);
    std::set<std::pair<BankId, std::uint32_t>> seen;
    for (std::uint32_t v = 0; v < kLayout.private_words_per_core; ++v) {
        const auto pa = m.translate(static_cast<Addr>(kLayout.private_base() + v));
        ASSERT_TRUE(pa.has_value());
        EXPECT_TRUE(seen.emplace(pa->bank, pa->offset).second);
        EXPECT_LT(pa->offset, 1024u);
    }
}

TEST(MmuGeometry, SharedInterleaveUsesAllBanks) {
    const DataMmu m(kLayout, 0, 32, 1024);
    std::set<BankId> seen;
    for (Addr v = 0; v < 64; ++v) seen.insert(m.translate(v)->bank);
    EXPECT_EQ(seen.size(), 32u);
}

TEST(MmuGeometry, RejectsNonDivisibleBankCounts) {
    EXPECT_THROW(DataMmu(kLayout, 0, 20, 1638), contract_violation);
    EXPECT_THROW(DataMmu(kLayout, 0, 8, 4096), contract_violation); // < 2/core
}

TEST(MmuGeometry, ImMapWithSixteenSmallBanks) {
    const ImMap m(ImPolicy::Banked, 16, 2048);
    EXPECT_EQ(m.translate(0, 0)->bank, 0);
    EXPECT_EQ(m.translate(2047, 0)->bank, 0);
    EXPECT_EQ(m.translate(2048, 0)->bank, 1);
    EXPECT_EQ(m.banks_used(184), 1u);
    EXPECT_EQ(m.banks_used(4096), 2u);
    EXPECT_FALSE(m.translate(static_cast<PAddr>(16 * 2048), 0).has_value());
}

} // namespace
} // namespace ulpmc::mmu
