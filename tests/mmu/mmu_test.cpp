#include "mmu/mmu.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"

namespace ulpmc::mmu {
namespace {

constexpr DmLayout kLayout{.shared_words = 6144, .private_words_per_core = 3072};

TEST(DataMmu, SharedSectionIsWordInterleaved) {
    const DataMmu m(kLayout, 0);
    for (Addr v = 0; v < 64; ++v) {
        const auto pa = m.translate(v);
        ASSERT_TRUE(pa.has_value());
        EXPECT_EQ(pa->bank, v % kDmBanks);
        EXPECT_EQ(pa->offset, v / kDmBanks);
        EXPECT_TRUE(m.is_shared(v));
    }
}

TEST(DataMmu, SharedIdenticalAcrossCores) {
    const DataMmu m0(kLayout, 0);
    const DataMmu m7(kLayout, 7);
    for (Addr v = 0; v < kLayout.shared_words; v += 97)
        EXPECT_EQ(m0.translate(v), m7.translate(v));
}

TEST(DataMmu, PrivateTranslationDependsOnPid) {
    const DataMmu m0(kLayout, 0);
    const DataMmu m1(kLayout, 1);
    const Addr v = kLayout.private_base();
    const auto p0 = m0.translate(v);
    const auto p1 = m1.translate(v);
    ASSERT_TRUE(p0 && p1);
    EXPECT_NE(p0->bank, p1->bank);
    EXPECT_EQ(p0->offset, p1->offset); // same slot, different bank
}

TEST(DataMmu, PrivateBanksDisjointAcrossCoresProperty) {
    // No two cores' private sections may ever share a bank — this is what
    // makes private traffic conflict-free by construction (§III-D).
    std::vector<std::set<BankId>> banks(kNumCores);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const DataMmu m(kLayout, static_cast<CoreId>(p));
        for (std::uint32_t v = 0; v < kLayout.private_words_per_core; ++v) {
            const auto pa = m.translate(static_cast<Addr>(kLayout.private_base() + v));
            ASSERT_TRUE(pa.has_value());
            banks[p].insert(pa->bank);
        }
    }
    for (unsigned a = 0; a < kNumCores; ++a)
        for (unsigned b = a + 1; b < kNumCores; ++b)
            for (const BankId bank : banks[a]) EXPECT_EQ(banks[b].count(bank), 0u);
}

TEST(DataMmu, PrivateDoesNotOverlapSharedRegionInBank) {
    // Shared words occupy the bottom of each bank; private the top.
    const DataMmu m(kLayout, 3);
    const std::uint32_t shared_per_bank = (kLayout.shared_words + kDmBanks - 1) / kDmBanks;
    for (std::uint32_t v = 0; v < kLayout.private_words_per_core; v += 13) {
        const auto pa = m.translate(static_cast<Addr>(kLayout.private_base() + v));
        ASSERT_TRUE(pa.has_value());
        EXPECT_GE(pa->offset, shared_per_bank);
        EXPECT_LT(pa->offset, kDmWordsPerBank);
    }
}

TEST(DataMmu, PrivateMappingIsInjective) {
    const DataMmu m(kLayout, 5);
    std::set<std::pair<BankId, std::uint32_t>> seen;
    for (std::uint32_t v = 0; v < kLayout.private_words_per_core; ++v) {
        const auto pa = m.translate(static_cast<Addr>(kLayout.private_base() + v));
        ASSERT_TRUE(pa.has_value());
        EXPECT_TRUE(seen.emplace(pa->bank, pa->offset).second) << "collision at v=" << v;
    }
}

TEST(DataMmu, OutOfRangeFaults) {
    const DataMmu m(kLayout, 0);
    EXPECT_FALSE(m.translate(static_cast<Addr>(kLayout.limit())).has_value());
    EXPECT_FALSE(m.translate(0xFFFF).has_value());
}

TEST(DataMmu, OversizedLayoutIsContractViolation) {
    // 16 banks x 2048 words; shared 8192 -> 512/bank + private 3072+
    // -> 1536+... pushing past the bank must be rejected.
    EXPECT_THROW(DataMmu(DmLayout{8192, 3136}, 0), contract_violation);
    EXPECT_NO_THROW(DataMmu(DmLayout{8192, 3072}, 0));
}

TEST(ImMap, DedicatedRoutesToOwnBank) {
    const ImMap m(ImPolicy::Dedicated);
    for (CoreId p = 0; p < kNumCores; ++p) {
        const auto pa = m.translate(100, p);
        ASSERT_TRUE(pa.has_value());
        EXPECT_EQ(pa->bank, p);
        EXPECT_EQ(pa->offset, 100u);
    }
    EXPECT_FALSE(m.translate(static_cast<PAddr>(kImWordsPerBank), 0).has_value());
}

TEST(ImMap, InterleavedUsesLsbs) {
    const ImMap m(ImPolicy::Interleaved);
    for (PAddr pc = 0; pc < 64; ++pc) {
        const auto pa = m.translate(pc, 3); // PID must not matter
        ASSERT_TRUE(pa.has_value());
        EXPECT_EQ(pa->bank, pc % kImBanks);
        EXPECT_EQ(pa->offset, pc / kImBanks);
    }
}

TEST(ImMap, BankedUsesMsbs) {
    const ImMap m(ImPolicy::Banked);
    EXPECT_EQ(m.translate(0, 0)->bank, 0);
    EXPECT_EQ(m.translate(4095, 0)->bank, 0);
    EXPECT_EQ(m.translate(4096, 0)->bank, 1);
    EXPECT_EQ(m.translate(4096, 0)->offset, 0u);
    EXPECT_EQ(m.translate(32767, 0)->bank, 7);
}

TEST(ImMap, SharedPoliciesSeeWholeImSpace) {
    const ImMap mi(ImPolicy::Interleaved);
    const ImMap mb(ImPolicy::Banked);
    EXPECT_TRUE(mi.translate(static_cast<PAddr>(kImWordsTotal - 1), 0).has_value());
    EXPECT_TRUE(mb.translate(static_cast<PAddr>(kImWordsTotal - 1), 0).has_value());
}

TEST(ImMap, BanksUsedDrivesGating) {
    // 184-instruction program (the paper's 552 bytes):
    EXPECT_EQ(ImMap(ImPolicy::Banked).banks_used(184), 1u);  // gate 7 of 8
    EXPECT_EQ(ImMap(ImPolicy::Interleaved).banks_used(184), 8u); // nothing gateable
    EXPECT_EQ(ImMap(ImPolicy::Dedicated).banks_used(184), 8u);
    EXPECT_EQ(ImMap(ImPolicy::Banked).banks_used(4096), 1u);
    EXPECT_EQ(ImMap(ImPolicy::Banked).banks_used(4097), 2u);
    EXPECT_EQ(ImMap(ImPolicy::Banked).banks_used(0), 0u);
    EXPECT_EQ(ImMap(ImPolicy::Interleaved).banks_used(3), 3u);
}

} // namespace
} // namespace ulpmc::mmu
