#include "power/area.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {
namespace {

using cluster::ArchKind;

TEST(Area, TableOneReference) {
    const auto a = area_of(ArchKind::McRef);
    EXPECT_NEAR(a.cores, 81.5, 0.05);
    EXPECT_NEAR(a.im, 429.4, 0.05);
    EXPECT_NEAR(a.dm, 576.7, 0.05);
    EXPECT_NEAR(a.dxbar, 20.5, 0.01);
    EXPECT_DOUBLE_EQ(a.ixbar, 0.0);
    EXPECT_NEAR(a.total(), 1108.1, 0.2);
}

TEST(Area, TableOneProposed) {
    for (const auto k : {ArchKind::UlpmcInt, ArchKind::UlpmcBank}) {
        const auto a = area_of(k);
        EXPECT_NEAR(a.cores, 87.3, 0.05);
        EXPECT_NEAR(a.dxbar, 23.0, 0.01);
        EXPECT_NEAR(a.ixbar, 12.4, 0.01);
        EXPECT_NEAR(a.total(), 1128.8, 0.2);
    }
}

TEST(Area, ProposedVariantsIdentical) {
    const auto i = area_of(ArchKind::UlpmcInt);
    const auto b = area_of(ArchKind::UlpmcBank);
    EXPECT_DOUBLE_EQ(i.total(), b.total()); // only bank-select bits differ
}

TEST(Area, PaperHeadlines) {
    const auto ref = area_of(ArchKind::McRef);
    const auto prop = area_of(ArchKind::UlpmcBank);
    // "logic area increases almost 20%"
    EXPECT_NEAR(prop.logic() / ref.logic(), 1.20, 0.02);
    // "area difference ... less than 2%"
    EXPECT_LT(prop.total() / ref.total(), 1.02);
    // "memories occupy ... almost 90% of the total area"
    EXPECT_NEAR(prop.memories() / prop.total(), 0.90, 0.02);
}

TEST(Area, SramFitHitsBothCalibrationPoints) {
    EXPECT_NEAR(sram_bank_area_kge(12288), cal::kAreaImBank, 0.01);
    EXPECT_NEAR(sram_bank_area_kge(4096), cal::kAreaDmBank, 0.01);
}

TEST(Area, SramFitMonotone) {
    double prev = 0;
    for (std::size_t bytes = 1024; bytes <= 65536; bytes *= 2) {
        const double a = sram_bank_area_kge(bytes);
        EXPECT_GT(a, prev);
        prev = a;
    }
}

TEST(Area, SramFitRejectsZero) { EXPECT_THROW(sram_bank_area_kge(0), contract_violation); }

TEST(Area, SiliconAreaConversion) {
    const auto a = area_of(ArchKind::McRef);
    EXPECT_NEAR(a.total_um2(), a.total() * 1000.0 * 3.136, 1.0);
    // ~3.5 mm^2 in 90 nm — a plausible sensor-node die.
    EXPECT_GT(a.total_um2(), 3.0e6);
    EXPECT_LT(a.total_um2(), 4.0e6);
}

} // namespace
} // namespace ulpmc::power
