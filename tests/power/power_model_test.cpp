#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {
namespace {

using cluster::ArchKind;

/// Synthetic event rates shaped like the measured ECG benchmark (see
/// bench/table2_dynamic_power); unit tests must not depend on the full
/// application, so the rates are pinned here.
EventRates ref_rates() {
    EventRates r;
    r.im_bank_accesses = 1.0; // dedicated banks: one access per op
    r.ixbar_requests = 1.0;
    r.dm_bank_accesses = 0.3772;
    r.dxbar_requests = 0.3772;
    r.ops_per_cycle = 7.91;
    r.im_banks_used = 8;
    r.im_banks_gated = 0;
    return r;
}

EventRates bank_rates() {
    EventRates r = ref_rates();
    r.im_bank_accesses = 0.131;
    r.dm_bank_accesses = 0.3145;
    r.ops_per_cycle = 7.62;
    r.im_banks_used = 1;
    r.im_banks_gated = 7;
    return r;
}

TEST(PowerModel, TableTwoReferenceBreakdown) {
    const PowerModel m(ArchKind::McRef);
    const auto p = m.dynamic_power(ref_rates(), 8e6, cal::kVnom);
    EXPECT_NEAR(p.cores, 0.18e-3, 0.005e-3);
    EXPECT_NEAR(p.im, 0.36e-3, 0.005e-3);
    EXPECT_NEAR(p.dm, 0.07e-3, 0.005e-3);
    EXPECT_NEAR(p.dxbar, 0.02e-3, 0.003e-3);
    EXPECT_DOUBLE_EQ(p.ixbar, 0.0);
    EXPECT_NEAR(p.clock, 0.03e-3, 0.002e-3);
    EXPECT_NEAR(p.total(), 0.66e-3, 0.02e-3);
}

TEST(PowerModel, DynamicPowerLinearInWorkload) {
    const PowerModel m(ArchKind::McRef);
    const auto p1 = m.dynamic_power(ref_rates(), 1e6, cal::kVnom);
    const auto p8 = m.dynamic_power(ref_rates(), 8e6, cal::kVnom);
    EXPECT_NEAR(p8.total() / p1.total(), 8.0, 1e-9);
}

TEST(PowerModel, DynamicPowerSquareInVoltage) {
    const PowerModel m(ArchKind::McRef);
    const auto hi = m.dynamic_power(ref_rates(), 1e6, 1.2);
    const auto lo = m.dynamic_power(ref_rates(), 1e6, 0.6);
    EXPECT_NEAR(hi.total() / lo.total(), 4.0, 1e-9);
}

TEST(PowerModel, CoreEnergyCrossCheck) {
    // §IV-C1: 15.6 pJ/op at 1.0 V for the core alone.
    const PowerModel m(ArchKind::McRef);
    const auto e = m.energy_per_op(ref_rates());
    EXPECT_NEAR(e.cores * VfModel::energy_scale(1.0), 15.6e-12, 0.1e-12);
}

TEST(PowerModel, LeakageGatingSavesThirtyEightPointEight) {
    const PowerModel ref(ArchKind::McRef);
    const PowerModel bank(ArchKind::UlpmcBank);
    const double lref = ref.leakage_power(ref_rates(), cal::kVmin).total();
    const double lbank = bank.leakage_power(bank_rates(), cal::kVmin).total();
    EXPECT_NEAR(1.0 - lbank / lref, 0.388, 0.005); // the Fig. 8 headline
}

TEST(PowerModel, UngatedProposedLeaksLikeReference) {
    const PowerModel ref(ArchKind::McRef);
    const PowerModel inter(ArchKind::UlpmcInt);
    EventRates r = ref_rates();
    r.im_banks_gated = 0;
    const double lref = ref.leakage_power(ref_rates(), cal::kVmin).total();
    const double lint = inter.leakage_power(r, cal::kVmin).total();
    EXPECT_NEAR(lint / lref, 1.011, 0.01); // "almost the same" (+1.1%)
}

TEST(PowerModel, LeakageCrossoverNearFiftyKops) {
    // Fig. 8: mc-ref leakage equals dynamic power around 50 kOps/s.
    const PowerModel m(ArchKind::McRef);
    const double dyn = m.dynamic_power(ref_rates(), 50e3, cal::kVmin).total();
    const double leak = m.leakage_power(ref_rates(), cal::kVmin).total();
    EXPECT_NEAR(dyn / leak, 1.0, 0.1);
}

TEST(PowerModel, OperatingPointPicksFloorAtLowWorkload) {
    const PowerModel m(ArchKind::McRef);
    const auto op = m.operating_point(ref_rates(), 5e3);
    EXPECT_EQ(op.v, cal::kVmin);
    EXPECT_NEAR(op.f_hz, 5e3 / 7.91, 1.0);
}

TEST(PowerModel, OperatingPointScalesVoltageAtHighWorkload) {
    const PowerModel m(ArchKind::McRef);
    const auto op = m.operating_point(ref_rates(), 500e6);
    EXPECT_GT(op.v, 1.0);
    EXPECT_LE(op.v, cal::kVnom);
}

TEST(PowerModel, MaxThroughputMatchesPaperScale) {
    // mc-ref achieves 664.5 MOps/s at nominal voltage (paper §IV-C2).
    const PowerModel m(ArchKind::McRef);
    EXPECT_NEAR(m.max_throughput(ref_rates()) / 1e6, 659.2, 1.0);
}

TEST(PowerModel, WorkloadBeyondReachIsContractViolation) {
    const PowerModel m(ArchKind::McRef);
    EXPECT_THROW(m.operating_point(ref_rates(), 2e9), contract_violation);
}

TEST(PowerModel, TotalPowerMonotoneInWorkload) {
    const PowerModel m(ArchKind::UlpmcBank);
    double prev = 0;
    for (double w = 1e3; w < 600e6; w *= 3) {
        const double p = m.power_at(bank_rates(), w).total;
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(PowerModel, KappaLookup) {
    EXPECT_DOUBLE_EQ(PowerModel(ArchKind::McRef, 12.0).kappa(), 1.0);
    EXPECT_NEAR(PowerModel(ArchKind::McRef, 7.1).kappa(), 1.03 / 0.87, 1e-12);
    EXPECT_NEAR(PowerModel(ArchKind::UlpmcBank, 8.9).kappa(), 0.54 / 0.41, 1e-12);
    EXPECT_THROW(PowerModel(ArchKind::McRef, 13.0), contract_violation);
}

TEST(PowerModel, ProposedCannotBeSynthesizedAtSevenPointOne) {
    // The I-Xbar's ~1.8 ns path addition forbids the 7.1 ns constraint.
    EXPECT_THROW(PowerModel(ArchKind::UlpmcBank, 7.1), contract_violation);
    EXPECT_NO_THROW(PowerModel(ArchKind::UlpmcBank, 8.9));
    EXPECT_NO_THROW(PowerModel(ArchKind::McRef, 7.1));
}

TEST(PowerModel, FigFiveSavingsEmergeFromKappa) {
    // 12 ns vs speed-optimized at the voltage floor: 15.5% / 24.1%.
    const EventRates r = ref_rates();
    const PowerModel fast(ArchKind::McRef, 7.1);
    const PowerModel sweet(ArchKind::McRef, 12.0);
    const double w = sweet.vf().f_max(cal::kVmin) * r.ops_per_cycle;
    const double saving = 1.0 - sweet.power_at(r, w).total / fast.power_at(r, w).total;
    EXPECT_NEAR(saving, 0.155, 0.01);
}

TEST(EventRatesTest, FromRunCondensesStats) {
    cluster::ClusterStats s;
    s.cycles = 100;
    s.core.resize(2);
    s.core[0].instret = 400;
    s.core[1].instret = 400;
    s.im_bank_accesses = 800;
    s.ixbar.grants = 800;
    s.dm_bank_reads = 100;
    s.dm_bank_writes = 60;
    s.dxbar.grants = 160;
    s.im_banks_used = 1;
    s.im_banks_gated = 7;
    const auto r = EventRates::from_run(s);
    EXPECT_DOUBLE_EQ(r.im_bank_accesses, 1.0);
    EXPECT_DOUBLE_EQ(r.dm_bank_accesses, 0.2);
    EXPECT_DOUBLE_EQ(r.dxbar_requests, 0.2);
    EXPECT_DOUBLE_EQ(r.ops_per_cycle, 8.0);
    EXPECT_EQ(r.im_banks_gated, 7u);
}

TEST(EventRatesTest, EmptyRunIsContractViolation) {
    cluster::ClusterStats s;
    s.core.resize(1);
    EXPECT_THROW(EventRates::from_run(s), contract_violation);
}

} // namespace
} // namespace ulpmc::power
