#include "power/dvfs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {
namespace {

TEST(Dvfs, NominalFrequencyFromConstraint) {
    EXPECT_NEAR(VfModel(12.0).f_nominal(), 83.33e6, 1e5);
    EXPECT_NEAR(VfModel(20.0).f_nominal(), 50.0e6, 1e3);
}

TEST(Dvfs, CalibratedNomToFloorRatio) {
    // The paper: 664.5 MOps/s at 1.2 V vs ~10 MOps/s at the floor.
    const VfModel m(12.0);
    EXPECT_NEAR(m.f_max(cal::kVnom) / m.f_max(cal::kVmin), cal::kFreqRatioNomToMin, 1e-6);
}

TEST(Dvfs, AllConstraintsShareTheFloorFrequency) {
    // Figs. 5/6: every synthesized variant reaches ~the same throughput
    // at the voltage floor.
    const double f12 = VfModel(12.0).f_max(cal::kVmin);
    for (const double c : {7.1, 8.9, 16.0, 20.0})
        EXPECT_NEAR(VfModel(c).f_max(cal::kVmin), f12, f12 * 1e-9) << c;
}

TEST(Dvfs, FrequencyMonotoneInVoltage) {
    const VfModel m(12.0);
    double prev = 0;
    for (double v = cal::kVmin; v <= cal::kVnom + 1e-9; v += 0.01) {
        const double f = m.f_max(std::min(v, cal::kVnom));
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(Dvfs, VForFInvertsFMax) {
    const VfModel m(12.0);
    for (double v = cal::kVmin + 0.01; v <= cal::kVnom; v += 0.05) {
        const double f = m.f_max(v);
        EXPECT_NEAR(m.v_for_f(f), v, 1e-6);
    }
}

TEST(Dvfs, BelowFloorFrequencyOnlyScalesFrequency) {
    const VfModel m(12.0);
    EXPECT_EQ(m.v_for_f(0.0), cal::kVmin);
    EXPECT_EQ(m.v_for_f(m.f_max(cal::kVmin) * 0.01), cal::kVmin);
}

TEST(Dvfs, AboveNominalIsNaN) {
    const VfModel m(12.0);
    EXPECT_TRUE(std::isnan(m.v_for_f(m.f_nominal() * 1.01)));
}

TEST(Dvfs, EnergyScaleIsSquareLaw) {
    EXPECT_DOUBLE_EQ(VfModel::energy_scale(cal::kVnom), 1.0);
    EXPECT_NEAR(VfModel::energy_scale(0.6), 0.25, 1e-12);
    // The paper's §IV-C1 cross-check: 22.5 pJ at 1.2 V -> 15.6 pJ at 1.0 V.
    EXPECT_NEAR(22.5 * VfModel::energy_scale(1.0), 15.6, 0.05);
}

TEST(Dvfs, VoltageRangeContractChecked) {
    const VfModel m(12.0);
    EXPECT_THROW(m.f_max(0.3), contract_violation);
    EXPECT_THROW(m.f_max(1.3), contract_violation);
    EXPECT_THROW(VfModel(-1.0), contract_violation);
}

TEST(Dvfs, SpeedOptimizedDesignsKeepNominalAdvantage) {
    EXPECT_NEAR(VfModel(7.1).f_nominal() / VfModel(12.0).f_nominal(), 12.0 / 7.1, 1e-9);
}

} // namespace
} // namespace ulpmc::power
