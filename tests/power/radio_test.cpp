#include "power/radio.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::power {
namespace {

TEST(Radio, PacketCounting) {
    RadioModel r;
    r.packet_payload_bits = 100;
    EXPECT_EQ(r.packets(0), 0u);
    EXPECT_EQ(r.packets(1), 1u);
    EXPECT_EQ(r.packets(100), 1u);
    EXPECT_EQ(r.packets(101), 2u);
    EXPECT_EQ(r.packets(1000), 10u);
}

TEST(Radio, EnergyScalesWithBits) {
    RadioModel r;
    r.energy_per_bit = 1e-9;
    r.packet_overhead = 0;
    EXPECT_NEAR(r.tx_energy(1000), 1e-6, 1e-15);
    EXPECT_NEAR(r.tx_energy(2000), 2e-6, 1e-15);
}

TEST(Radio, OverheadPerPacket) {
    RadioModel r;
    r.energy_per_bit = 0;
    r.packet_overhead = 5e-6;
    r.packet_payload_bits = 64;
    EXPECT_NEAR(r.tx_energy(64), 5e-6, 1e-15);
    EXPECT_NEAR(r.tx_energy(65), 10e-6, 1e-15);
    EXPECT_EQ(r.tx_energy(0), 0.0);
}

TEST(Radio, DefaultsAreBleClass) {
    const RadioModel r;
    // A full raw 8-lead block: 8 x 512 x 16 bits = 65536 bits ~ 1.5 mJ.
    const double e = r.tx_energy(65536);
    EXPECT_GT(e, 1e-3);
    EXPECT_LT(e, 3e-3);
}

TEST(Radio, ZeroPayloadCapIsContractViolation) {
    RadioModel r;
    r.packet_payload_bits = 0;
    EXPECT_THROW(r.packets(10), contract_violation);
}

} // namespace
} // namespace ulpmc::power
