#include "power/radio.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::power {
namespace {

TEST(Radio, PacketCounting) {
    RadioModel r;
    r.packet_payload_bits = 100;
    EXPECT_EQ(r.packets(0), 0u);
    EXPECT_EQ(r.packets(1), 1u);
    EXPECT_EQ(r.packets(100), 1u);
    EXPECT_EQ(r.packets(101), 2u);
    EXPECT_EQ(r.packets(1000), 10u);
}

TEST(Radio, EnergyScalesWithBits) {
    RadioModel r;
    r.energy_per_bit = 1e-9;
    r.packet_overhead = 0;
    EXPECT_NEAR(r.tx_energy(1000), 1e-6, 1e-15);
    EXPECT_NEAR(r.tx_energy(2000), 2e-6, 1e-15);
}

TEST(Radio, OverheadPerPacket) {
    RadioModel r;
    r.energy_per_bit = 0;
    r.packet_overhead = 5e-6;
    r.packet_payload_bits = 64;
    EXPECT_NEAR(r.tx_energy(64), 5e-6, 1e-15);
    EXPECT_NEAR(r.tx_energy(65), 10e-6, 1e-15);
    EXPECT_EQ(r.tx_energy(0), 0.0);
}

TEST(Radio, DefaultsAreBleClass) {
    const RadioModel r;
    // A full raw 8-lead block: 8 x 512 x 16 bits = 65536 bits ~ 1.5 mJ.
    const double e = r.tx_energy(65536);
    EXPECT_GT(e, 1e-3);
    EXPECT_LT(e, 3e-3);
}

TEST(Radio, ZeroBitPayloadCostsNothing) {
    // The lifetime link calls tx_energy for whatever the compressor
    // produced; an empty block must be free (no phantom packet).
    const RadioModel r;
    EXPECT_EQ(r.packets(0), 0u);
    EXPECT_EQ(r.tx_energy(0), 0.0);
}

TEST(Radio, ExactPacketPayloadMultipleAddsNoPartialPacket) {
    const RadioModel r; // payload 216 * 8 = 1728 bits
    const std::size_t p = r.packet_payload_bits;
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{37}}) {
        EXPECT_EQ(r.packets(k * p), k);
        EXPECT_NEAR(r.tx_energy(k * p),
                    r.energy_per_bit * static_cast<double>(k * p) +
                        r.packet_overhead * static_cast<double>(k),
                    1e-15);
        // One bit past the boundary opens packet k+1.
        EXPECT_EQ(r.packets(k * p + 1), k + 1);
    }
}

TEST(Radio, TinyPacketsAreOverheadDominated) {
    const RadioModel r;
    // A 1-bit send still pays the full per-packet overhead: with the BLE
    // defaults (20 nJ/bit, 4 uJ/packet) overhead is >99% of the energy.
    const double e1 = r.tx_energy(1);
    EXPECT_NEAR(e1, r.packet_overhead + r.energy_per_bit, 1e-15);
    EXPECT_GT(r.packet_overhead / e1, 0.99);
    // Shipping n bits as n separate 1-bit packets costs ~n x the packet
    // overhead of shipping them together — why the link coalesces blocks.
    const std::size_t n = 100;
    EXPECT_NEAR(static_cast<double>(n) * r.tx_energy(1),
                r.tx_energy(n) + static_cast<double>(n - 1) * r.packet_overhead, 1e-12);
}

TEST(Radio, ZeroPayloadCapIsContractViolation) {
    RadioModel r;
    r.packet_payload_bits = 0;
    EXPECT_THROW(r.packets(10), contract_violation);
}

} // namespace
} // namespace ulpmc::power
