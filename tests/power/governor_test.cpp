#include "power/governor.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {
namespace {

EventRates bank_rates() {
    EventRates r;
    r.im_bank_accesses = 0.131;
    r.ixbar_requests = 1.0;
    r.dm_bank_accesses = 0.3145;
    r.dxbar_requests = 0.3772;
    r.ops_per_cycle = 7.62;
    r.im_banks_used = 1;
    r.im_banks_gated = 7;
    return r;
}

// The ECG job: ~690k ops every 2.048 s.
constexpr double kOps = 690e3;
constexpr double kPeriod = 2.048;

TEST(Governor, JustInTimeMatchesPowerModel) {
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const EventRates r = bank_rates();
    const DutyCycleGovernor gov(m, r);
    const auto s = gov.just_in_time(kOps, kPeriod);
    EXPECT_EQ(s.kind, Schedule::Kind::JustInTime);
    EXPECT_NEAR(s.average_power, m.power_at(r, kOps / kPeriod).total, 1e-12);
    EXPECT_DOUBLE_EQ(s.busy_s, kPeriod);
}

TEST(Governor, RaceToIdleMeetsTheDeadline) {
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates());
    const auto s = gov.race_to_idle(kOps, kPeriod);
    EXPECT_LE(s.busy_s, kPeriod);
    EXPECT_GT(s.sleep_s, 0.0);
    EXPECT_NEAR(s.busy_s + s.sleep_s, kPeriod, 1e-9);
}

TEST(Governor, RacingStaysAtTheVoltageFloorWhenPossible) {
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates());
    const auto s = gov.race_to_idle(kOps, kPeriod);
    EXPECT_DOUBLE_EQ(s.op.v, cal::kVmin);
}

TEST(Governor, SleepStateMakesRacingWinAtLightLoad) {
    // The extension's headline: with retention sleep, race-to-idle beats
    // the paper's just-in-time policy at light duty cycles.
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates());
    const auto best = gov.best(kOps, kPeriod);
    EXPECT_EQ(best.kind, Schedule::Kind::RaceToIdle);
    const auto jit = gov.just_in_time(kOps, kPeriod);
    EXPECT_LT(best.energy_per_period, jit.energy_per_period);
}

TEST(Governor, WithoutRetentionSleepJustInTimeWins) {
    // retention_fraction == 1 models a chip with no sleep state: idling
    // leaks fully and racing buys nothing (dynamic energy is equal at the
    // floor), so just-in-time is never worse.
    SleepModel no_sleep;
    no_sleep.retention_leakage_fraction = 1.0;
    no_sleep.transition_energy = 0.0;
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates(), no_sleep);
    const auto jit = gov.just_in_time(kOps, kPeriod);
    const auto race = gov.race_to_idle(kOps, kPeriod);
    EXPECT_LE(jit.energy_per_period, race.energy_per_period * (1.0 + 1e-9));
}

TEST(Governor, HeavyJobForcesVoltageUpForBothPolicies) {
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates());
    const double heavy_ops = 400e6 * kPeriod; // 400 MOps/s sustained
    const auto jit = gov.just_in_time(heavy_ops, kPeriod);
    const auto race = gov.race_to_idle(heavy_ops, kPeriod);
    EXPECT_GT(jit.op.v, cal::kVmin);
    // Racing can't go below the deadline frequency either.
    EXPECT_GE(race.op.f_hz, jit.op.f_hz - 1.0);
    // And just-in-time wins: racing above the floor pays V^2.
    EXPECT_LE(jit.energy_per_period, race.energy_per_period * (1.0 + 1e-9));
}

TEST(Governor, TinyGapsDoNotSleep) {
    SleepModel s;
    s.min_sleep_s = 10.0; // absurdly high: sleeping never allowed
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates(), s);
    const auto race = gov.race_to_idle(kOps, kPeriod);
    EXPECT_DOUBLE_EQ(race.sleep_s, 0.0);
}

TEST(Governor, SleepRequiresTheGapToStrictlyExceedMinSleep) {
    // The boundary is exact: a gap equal to min_sleep_s stays in active
    // idle (entering sleep for a gap that merely ties the minimum buys
    // nothing once the transition is paid), a hair under it sleeps.
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    SleepModel s;
    const double gap = DutyCycleGovernor(m, bank_rates(), s).race_to_idle(kOps, kPeriod).sleep_s;
    ASSERT_GT(gap, 0.0);

    s.min_sleep_s = gap; // exactly at the boundary
    const auto at = DutyCycleGovernor(m, bank_rates(), s).race_to_idle(kOps, kPeriod);
    EXPECT_DOUBLE_EQ(at.sleep_s, 0.0);
    EXPECT_NEAR(at.busy_s + gap, kPeriod, 1e-9) << "the gap itself must not change";

    s.min_sleep_s = gap * (1.0 - 1e-9); // just under: the gap qualifies
    const auto under = DutyCycleGovernor(m, bank_rates(), s).race_to_idle(kOps, kPeriod);
    EXPECT_DOUBLE_EQ(under.sleep_s, gap);
}

TEST(Governor, ActiveIdleGapIsPricedAtFullLeakage) {
    // A gap too short to sleep still leaks at the full active rate for its
    // whole duration — exactly what a retention fraction of 1 with free
    // transitions charges. The two schedules must agree bit-for-bit: that
    // is the break-even identity between active idle and useless sleep.
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    SleepModel no_sleep;
    no_sleep.min_sleep_s = 1e9;
    SleepModel full_leak;
    full_leak.retention_leakage_fraction = 1.0;
    full_leak.transition_energy = 0.0;
    const auto active = DutyCycleGovernor(m, bank_rates(), no_sleep).race_to_idle(kOps, kPeriod);
    const auto retention =
        DutyCycleGovernor(m, bank_rates(), full_leak).race_to_idle(kOps, kPeriod);
    EXPECT_DOUBLE_EQ(active.energy_per_period, retention.energy_per_period);
    EXPECT_DOUBLE_EQ(active.sleep_s, 0.0);
    EXPECT_GT(retention.sleep_s, 0.0);
}

TEST(Governor, InvalidInputsAreContractViolations) {
    const PowerModel m(cluster::ArchKind::UlpmcBank);
    const DutyCycleGovernor gov(m, bank_rates());
    EXPECT_THROW(gov.just_in_time(0, 1.0), contract_violation);
    EXPECT_THROW(gov.race_to_idle(1.0, 0), contract_violation);
    SleepModel bad;
    bad.retention_leakage_fraction = 1.5;
    EXPECT_THROW(DutyCycleGovernor(m, bank_rates(), bad), contract_violation);
}

} // namespace
} // namespace ulpmc::power
