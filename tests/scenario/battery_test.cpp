#include "scenario/battery.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace ulpmc::scenario {
namespace {

TEST(Battery, DrainAndHarvestClampAtBounds) {
    Battery b(BatteryConfig{.capacity_j = 2.0});
    EXPECT_DOUBLE_EQ(b.charge_j(), 2.0);
    b.drain(0.5);
    EXPECT_DOUBLE_EQ(b.charge_j(), 1.5);
    b.harvest(1.0, 10.0); // 10 J of input into a 2 J battery
    EXPECT_DOUBLE_EQ(b.charge_j(), 2.0);
    b.drain(5.0);
    EXPECT_DOUBLE_EQ(b.charge_j(), 0.0);
}

TEST(Battery, BrownoutHasRestartHysteresis) {
    Battery b(BatteryConfig{
        .capacity_j = 1.0, .brownout_fraction = 0.02, .restart_fraction = 0.05});
    b.drain(0.99); // 1% < 2%: regulator out
    EXPECT_TRUE(b.browned_out());
    // Climbing back above the brownout threshold is NOT enough...
    b.harvest(1.0, 0.02); // -> 3%
    EXPECT_TRUE(b.browned_out());
    // ...the restart threshold is.
    b.harvest(1.0, 0.03); // -> 6%
    EXPECT_FALSE(b.browned_out());
}

TEST(Battery, RejectsNonsenseConfigAndInput) {
    EXPECT_THROW(Battery(BatteryConfig{.capacity_j = 0}), contract_violation);
    EXPECT_THROW(Battery(BatteryConfig{.brownout_fraction = 0.5, .restart_fraction = 0.1}),
                 contract_violation);
    Battery b(BatteryConfig{});
    EXPECT_THROW(b.drain(-1.0), contract_violation);
    EXPECT_THROW(b.harvest(-1.0, 1.0), contract_violation);
}

TEST(DegradeLadder, LevelsFollowChargeThresholds) {
    EXPECT_EQ(level_for_charge(1.00), DegradeLevel::Full);
    EXPECT_EQ(level_for_charge(0.61), DegradeLevel::Full);
    EXPECT_EQ(level_for_charge(0.60), DegradeLevel::ShedLeads);
    EXPECT_EQ(level_for_charge(0.41), DegradeLevel::ShedLeads);
    EXPECT_EQ(level_for_charge(0.40), DegradeLevel::CoarseTx);
    EXPECT_EQ(level_for_charge(0.26), DegradeLevel::CoarseTx);
    EXPECT_EQ(level_for_charge(0.25), DegradeLevel::TightProtect);
    EXPECT_EQ(level_for_charge(0.11), DegradeLevel::TightProtect);
    EXPECT_EQ(level_for_charge(0.10), DegradeLevel::RadioSilence);
    EXPECT_EQ(level_for_charge(0.00), DegradeLevel::RadioSilence);
}

TEST(Battery, EncodeDecodeRoundTripsChargeAndBrownoutLatch) {
    BatteryConfig cfg;
    cfg.capacity_j = 2.0;
    Battery a(cfg);
    a.drain(1.99); // browns out below 2%
    ASSERT_TRUE(a.browned_out());
    std::vector<std::uint8_t> state;
    a.encode(state);

    Battery b(cfg); // fresh and full: decode must overwrite both fields
    ByteReader in(state);
    ASSERT_TRUE(b.decode(in));
    EXPECT_EQ(b.charge_j(), a.charge_j()) << "bit-exact, not approximate";
    EXPECT_TRUE(b.browned_out());

    // Truncated or out-of-range states are rejected without touching state.
    Battery c(cfg);
    ByteReader short_in(state.data(), 4);
    EXPECT_FALSE(c.decode(short_in));
    EXPECT_EQ(c.charge_j(), cfg.capacity_j);
    std::vector<std::uint8_t> over;
    Battery d(cfg);
    d.harvest(1.0, 1.0);
    over.clear();
    put_f64(over, 5.0); // above capacity
    put_raw(over, std::uint8_t{0});
    ByteReader over_in(over);
    EXPECT_FALSE(d.decode(over_in));
}

TEST(DegradeLadder, NamesAreStableJsonKeys) {
    EXPECT_STREQ(level_name(DegradeLevel::Full), "full");
    EXPECT_STREQ(level_name(DegradeLevel::ShedLeads), "shed-leads");
    EXPECT_STREQ(level_name(DegradeLevel::CoarseTx), "coarse-tx");
    EXPECT_STREQ(level_name(DegradeLevel::TightProtect), "tight-protect");
    EXPECT_STREQ(level_name(DegradeLevel::RadioSilence), "radio-silence");
}

} // namespace
} // namespace ulpmc::scenario
