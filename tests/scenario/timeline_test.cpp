#include "scenario/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ulpmc::scenario {
namespace {

Timeline parse(const std::string& text) {
    std::istringstream in(text);
    return parse_timeline(in);
}

TEST(Timeline, ParsesHeadersPhasesAndDefaults) {
    const Timeline tl = parse(
        "# comment\n"
        "block_period_s 1.5\n"
        "battery_j 2.5\n"
        "\n"
        "phase quiet 100\n"
        "phase storm 50 lambda=1e-6 ble=down ble_loss=0.25 harvest_uw=80 arrhythmia=1\n");
    EXPECT_DOUBLE_EQ(tl.block_period_s, 1.5);
    EXPECT_DOUBLE_EQ(tl.battery_j, 2.5);
    ASSERT_EQ(tl.phases.size(), 2u);
    const Phase& q = tl.phases[0];
    EXPECT_EQ(q.name, "quiet");
    EXPECT_DOUBLE_EQ(q.duration_s, 100);
    EXPECT_DOUBLE_EQ(q.lambda, 0);
    EXPECT_TRUE(q.ble_up);
    EXPECT_DOUBLE_EQ(q.ble_loss, 0);
    EXPECT_FALSE(q.arrhythmia);
    const Phase& s = tl.phases[1];
    EXPECT_DOUBLE_EQ(s.lambda, 1e-6);
    EXPECT_FALSE(s.ble_up);
    EXPECT_DOUBLE_EQ(s.ble_loss, 0.25);
    EXPECT_DOUBLE_EQ(s.harvest_uw, 80);
    EXPECT_TRUE(s.arrhythmia);
    EXPECT_DOUBLE_EQ(tl.total_s(), 150);
}

TEST(Timeline, PhaseIndexCyclesTheScript) {
    const Timeline tl = parse("phase a 10\nphase b 20\n");
    EXPECT_EQ(tl.phase_index_at(0), 0u);
    EXPECT_EQ(tl.phase_index_at(9.9), 0u);
    EXPECT_EQ(tl.phase_index_at(10), 1u);
    EXPECT_EQ(tl.phase_index_at(29.9), 1u);
    // --days runs the schedule on repeat: pass 2 and beyond re-enter a.
    EXPECT_EQ(tl.phase_index_at(30), 0u);
    EXPECT_EQ(tl.phase_index_at(65), 0u);
    EXPECT_EQ(tl.phase_index_at(75), 1u);
}

TEST(Timeline, RejectsCorruptScripts) {
    // A corrupt timeline must never silently configure a device: every
    // defect throws with the offending line.
    EXPECT_THROW(parse(""), TimelineError);                            // no phases
    EXPECT_THROW(parse("block_period_s 2.0\n"), TimelineError);        // no phases
    EXPECT_THROW(parse("phase a\n"), TimelineError);                   // no duration
    EXPECT_THROW(parse("phase a 0\n"), TimelineError);                 // zero duration
    EXPECT_THROW(parse("phase a -5\n"), TimelineError);                // negative
    EXPECT_THROW(parse("phase a ten\n"), TimelineError);               // not a number
    EXPECT_THROW(parse("phase a 10 lambda=-1\n"), TimelineError);      // negative rate
    EXPECT_THROW(parse("phase a 10 ble=sideways\n"), TimelineError);   // bad enum
    EXPECT_THROW(parse("phase a 10 ble_loss=1.5\n"), TimelineError);   // out of range
    EXPECT_THROW(parse("phase a 10 volume=11\n"), TimelineError);      // unknown key
    EXPECT_THROW(parse("warp_factor 9\nphase a 10\n"), TimelineError); // unknown directive
    EXPECT_THROW(parse("battery_j 1\nbattery_j 2\nphase a 10\n"),
                 TimelineError); // duplicate header
    EXPECT_THROW(parse("phase a 1e400\n"), TimelineError);             // not finite
}

TEST(Timeline, ErrorsNameTheLine) {
    try {
        parse("block_period_s 2.0\nphase a 10 lambda=oops\n");
        FAIL() << "expected TimelineError";
    } catch (const TimelineError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(Timeline, LoadRejectsMissingFile) {
    EXPECT_THROW(load_timeline("/nonexistent/timeline.txt"), TimelineError);
}

} // namespace
} // namespace ulpmc::scenario
