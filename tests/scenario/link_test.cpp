#include "scenario/link.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/serial.hpp"

namespace ulpmc::scenario {
namespace {

LinkConfig tiny_config() {
    LinkConfig cfg;
    cfg.radio.energy_per_bit = 1e-9;
    cfg.radio.packet_overhead = 1e-6;
    cfg.radio.packet_payload_bits = 100;
    cfg.buffer_bits = 1000;
    cfg.backoff_base_s = 0.25;
    cfg.backoff_max_s = 8.0;
    cfg.max_packets_per_step = 4;
    return cfg;
}

TEST(BleLink, DeliversWholeBlocksAndCreditsSamples) {
    BleLink link(tiny_config(), 1);
    link.enqueue(250, 512, TxQuality::Full); // 3 packets
    link.step(1.0, true, 0.0);
    EXPECT_EQ(link.buffered_bits(), 0u);
    EXPECT_EQ(link.stats().packets_sent, 3u);
    EXPECT_EQ(link.stats().bits_delivered, 250u);
    EXPECT_EQ(link.stats().samples_delivered, 512u);
    EXPECT_EQ(link.stats().packets_lost, 0u);
    EXPECT_NEAR(link.stats().tx_energy_j, 250e-9 + 3e-6, 1e-12);
}

TEST(BleLink, QualityBucketsAreSeparated) {
    BleLink link(tiny_config(), 1);
    link.enqueue(100, 10, TxQuality::Full);
    link.enqueue(100, 20, TxQuality::Degraded);
    link.enqueue(100, 30, TxQuality::Corrupt);
    link.step(1.0, true, 0.0);
    EXPECT_EQ(link.stats().samples_delivered, 10u);
    EXPECT_EQ(link.stats().samples_delivered_degraded, 20u);
    EXPECT_EQ(link.stats().samples_delivered_corrupt, 30u);
}

TEST(BleLink, SaturationEvictsOldestBlocksWhole) {
    BleLink link(tiny_config(), 1); // bound: 1000 bits
    link.enqueue(400, 100, TxQuality::Full);
    link.enqueue(400, 200, TxQuality::Full);
    EXPECT_EQ(link.stats().samples_dropped, 0u);
    link.enqueue(400, 300, TxQuality::Full); // 1200 > 1000: oldest goes
    EXPECT_EQ(link.buffered_bits(), 800u);
    EXPECT_EQ(link.stats().bits_dropped, 400u);
    EXPECT_EQ(link.stats().samples_dropped, 100u);
    // Freshest-data-wins: what remains is the two NEWEST blocks (800 bits
    // = 8 packets, two steps at 4 packets per step).
    link.step(1.0, true, 0.0);
    link.step(1.0, true, 0.0);
    EXPECT_EQ(link.stats().samples_delivered, 500u);
}

TEST(BleLink, DroughtHoldsWithoutLossOrBackoff) {
    BleLink link(tiny_config(), 1);
    link.enqueue(100, 10, TxQuality::Full);
    for (int i = 0; i < 50; ++i) link.step(1.0, false, 1.0);
    // Down is not lossy: nothing sent, nothing lost, buffer intact.
    EXPECT_EQ(link.stats().packets_sent, 0u);
    EXPECT_EQ(link.stats().backoffs, 0u);
    EXPECT_EQ(link.buffered_bits(), 100u);
    link.step(1.0, true, 0.0);
    EXPECT_EQ(link.stats().samples_delivered, 10u);
}

TEST(BleLink, BackoffSequenceIsExponentialWithCap) {
    LinkConfig cfg = tiny_config();
    BleLink link(cfg, 99);
    // Saturate the buffer so there is always something to send, then step
    // with loss = 1: every attempt is lost, each loss enters backoff.
    link.enqueue(1000, 100, TxQuality::Full);
    double prev_remaining = 0;
    unsigned losses = 0;
    // Drive with dt = 0: backoff never expires between our observations,
    // so each new window must come from one more consecutive loss.
    for (int i = 0; i < 12; ++i) {
        const double before = link.backoff_remaining_s();
        link.step(before + 1e-9, true, 1.0); // expire the window, lose again
        ++losses;
        EXPECT_EQ(link.consecutive_losses(), losses);
        const double window = link.backoff_remaining_s();
        ASSERT_GT(window, 0.0);
        // Jitter is +-25% of the nominal base * 2^(n-1), capped at max.
        const double nominal =
            std::min(cfg.backoff_max_s, cfg.backoff_base_s * std::pow(2.0, losses - 1));
        EXPECT_GE(window, 0.75 * nominal - 1e-12);
        EXPECT_LE(window, cfg.backoff_max_s + 1e-12);
        if (nominal < cfg.backoff_max_s) EXPECT_LE(window, 1.25 * nominal + 1e-12);
        prev_remaining = window;
    }
    (void)prev_remaining;
    // After 12 consecutive losses the nominal is far past the cap: the
    // window must sit inside [0.75 * max, max].
    EXPECT_GE(link.backoff_remaining_s(), 0.75 * cfg.backoff_max_s - 1e-12);
    EXPECT_LE(link.backoff_remaining_s(), cfg.backoff_max_s + 1e-12);
    EXPECT_LE(link.stats().max_backoff_s, cfg.backoff_max_s + 1e-12);
    EXPECT_EQ(link.stats().backoffs, 12u);
    EXPECT_EQ(link.stats().bits_delivered, 0u);
    // Energy was still burned on every lost attempt.
    EXPECT_NEAR(link.stats().tx_energy_j, 12 * (100e-9 + 1e-6), 1e-12);

    // A success resets the ladder to the base window.
    link.step(link.backoff_remaining_s() + 1e-9, true, 0.0);
    EXPECT_EQ(link.consecutive_losses(), 0u);
}

TEST(BleLink, BackoffBlocksTransmissionUntilExpiry) {
    BleLink link(tiny_config(), 7);
    link.enqueue(1000, 100, TxQuality::Full);
    link.step(0.001, true, 1.0); // one loss -> backoff
    const auto sent_after_loss = link.stats().packets_sent;
    link.step(0.01, true, 0.0); // well inside the window: must not send
    EXPECT_EQ(link.stats().packets_sent, sent_after_loss);
    link.step(link.backoff_remaining_s() + 1e-9, true, 0.0);
    EXPECT_GT(link.stats().packets_sent, sent_after_loss);
}

TEST(BleLink, SeededDeterminism) {
    auto drive = [](std::uint64_t seed) {
        BleLink link(tiny_config(), seed);
        for (int i = 0; i < 200; ++i) {
            link.enqueue(150, 15, TxQuality::Full);
            link.step(0.5, i % 7 != 0, 0.3);
        }
        return link.stats();
    };
    const LinkStats a = drive(42);
    const LinkStats b = drive(42);
    EXPECT_EQ(a.packets_sent, b.packets_sent);
    EXPECT_EQ(a.packets_lost, b.packets_lost);
    EXPECT_EQ(a.backoffs, b.backoffs);
    EXPECT_EQ(a.bits_delivered, b.bits_delivered);
    EXPECT_EQ(a.samples_delivered, b.samples_delivered);
    EXPECT_DOUBLE_EQ(a.max_backoff_s, b.max_backoff_s);
    EXPECT_DOUBLE_EQ(a.tx_energy_j, b.tx_energy_j);
    // A different seed draws a different loss/jitter path.
    const LinkStats c = drive(43);
    EXPECT_NE(a.packets_lost, c.packets_lost);
}

TEST(BleLink, EncodeDecodeResumesMidStreamBitIdentical) {
    // Durable-execution contract (DESIGN.md §9.6): snapshot a link mid-
    // stream — partially transmitted head block, pending backoff, banked
    // RNG state — decode into a fresh link, and both must walk the exact
    // same future (counters AND energy, bit for bit).
    BleLink a(tiny_config(), 42);
    for (int i = 0; i < 57; ++i) {
        a.enqueue(150, 15, i % 3 ? TxQuality::Full : TxQuality::Degraded);
        a.step(0.5, i % 7 != 0, 0.3);
    }
    std::vector<std::uint8_t> state;
    a.encode(state);

    BleLink b(tiny_config(), 9); // different seed: decode must overwrite it
    ByteReader in(state);
    ASSERT_TRUE(b.decode(in));
    EXPECT_EQ(b.buffered_bits(), a.buffered_bits());
    for (int i = 0; i < 100; ++i) {
        a.enqueue(150, 15, TxQuality::Full);
        b.enqueue(150, 15, TxQuality::Full);
        a.step(0.5, i % 5 != 0, 0.25);
        b.step(0.5, i % 5 != 0, 0.25);
    }
    EXPECT_EQ(a.stats().packets_sent, b.stats().packets_sent);
    EXPECT_EQ(a.stats().packets_lost, b.stats().packets_lost);
    EXPECT_EQ(a.stats().bits_delivered, b.stats().bits_delivered);
    EXPECT_EQ(a.stats().bits_dropped, b.stats().bits_dropped);
    EXPECT_EQ(a.stats().samples_delivered, b.stats().samples_delivered);
    EXPECT_EQ(a.stats().samples_dropped, b.stats().samples_dropped);
    EXPECT_EQ(a.stats().tx_energy_j, b.stats().tx_energy_j) << "must be bit-exact";
    EXPECT_EQ(a.stats().max_backoff_s, b.stats().max_backoff_s);
    EXPECT_EQ(a.backoff_remaining_s(), b.backoff_remaining_s());
}

TEST(BleLink, DecodeRejectsTruncatedAndCorruptState) {
    BleLink a(tiny_config(), 42);
    a.enqueue(150, 15, TxQuality::Full);
    a.step(0.5, true, 0.3);
    std::vector<std::uint8_t> state;
    a.encode(state);

    BleLink b(tiny_config(), 7);
    const std::uint64_t before = b.stats().packets_sent;
    ByteReader short_in(state.data(), state.size() / 2);
    EXPECT_FALSE(b.decode(short_in));
    EXPECT_EQ(b.stats().packets_sent, before) << "a failed decode must not touch state";

    // An impossible queue count must be rejected before it allocates.
    std::vector<std::uint8_t> corrupt = state;
    for (std::size_t i = 21; i < 29 && i < corrupt.size(); ++i) corrupt[i] = 0xFF;
    ByteReader corrupt_in(corrupt);
    EXPECT_FALSE(b.decode(corrupt_in));
}

} // namespace
} // namespace ulpmc::scenario
