// Lifetime engine determinism and invariants (DESIGN.md §12).
//
// The headline guarantee: one (timeline, seed) pair fully determines a
// device lifetime — the emitted JSON is byte-identical across simulator
// engine tiers (trace vs batched) and across SweepRunner thread counts.
// Chunk planning draws every strike from a stream keyed by the global
// block index and all device state applies in block order, so neither the
// engine tier (stat-identical by the differential suites) nor the
// parallel scheduling of struck-block simulations can leak into the
// bytes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::scenario {
namespace {

/// Small but eventful: the battery descends the ladder during calm+storm,
/// the storm injects faults (parallel struck-block path exercised), the
/// drought buffers, the recovery recharges.
constexpr const char* kScript = R"(
block_period_s 2.0
battery_j 0.01
phase calm     60 harvest_uw=20
phase storm    60 lambda=2e-6 ble_loss=0.2 harvest_uw=20
phase drought  60 ble=down harvest_uw=300
phase recovery 60 ble_loss=0.02 harvest_uw=400
)";

Timeline script() {
    std::istringstream in(kScript);
    return parse_timeline(in);
}

LifetimeReport run_once(cluster::SimEngine engine, unsigned threads, Policy policy,
                        std::uint64_t seed = 7) {
    DeviceConfig dc;
    dc.seed = seed;
    dc.engine = engine;
    dc.policy = policy;
    LifetimeEngine eng(script(), dc);
    sweep::SweepRunner pool(threads);
    return eng.run(pool);
}

std::string as_json(const LifetimeReport& rep) {
    std::ostringstream os;
    write_json(os, "test", {rep});
    return os.str();
}

TEST(Lifetime, JsonIsByteIdenticalAcrossEngineTiersAndThreadCounts) {
    const std::string reference = as_json(run_once(cluster::SimEngine::Trace, 1, Policy::Ladder));
    // The engine tier must not be able to leak into the bytes...
    EXPECT_EQ(reference, as_json(run_once(cluster::SimEngine::Batched, 1, Policy::Ladder)));
    // ...and neither may the parallel scheduling of struck-block runs.
    EXPECT_EQ(reference, as_json(run_once(cluster::SimEngine::Trace, 4, Policy::Ladder)));
    EXPECT_EQ(reference, as_json(run_once(cluster::SimEngine::Batched, 4, Policy::Ladder)));
}

TEST(Lifetime, LadderVerifiesEveryBlockAndWalksTheLadder) {
    const LifetimeReport rep = run_once(cluster::SimEngine::Trace, 4, Policy::Ladder);
    // Verified blocks can roll back but never ship corruption.
    EXPECT_EQ(rep.sdc_blocks, 0u);
    EXPECT_EQ(rep.link.samples_delivered_corrupt, 0u);
    std::uint64_t struck = 0, blocks = 0;
    unsigned deepest = 0;
    for (const PhaseReport& p : rep.phases) {
        struck += p.struck_blocks;
        blocks += p.blocks;
        deepest = std::max(deepest, p.deepest_level);
    }
    EXPECT_EQ(blocks, rep.total_blocks);
    // The storm must actually have struck (the parallel path ran)...
    EXPECT_GT(struck, 0u);
    // ...and the draining battery must have pushed past Full.
    EXPECT_GT(deepest, static_cast<unsigned>(DegradeLevel::Full));
    EXPECT_GT(rep.delivered_fraction, 0.0);
    EXPECT_LE(rep.full_fidelity_fraction, rep.delivered_fraction);
    // Conservation at the link: every sensed sample was delivered (full,
    // degraded), evicted, or still sits buffered — never silently lost.
    std::uint64_t sensed = 0;
    for (const PhaseReport& p : rep.phases) sensed += p.samples_sensed;
    EXPECT_GE(sensed, rep.link.samples_delivered + rep.link.samples_delivered_degraded +
                          rep.link.samples_dropped);
}

TEST(Lifetime, SeedChangesTheRun) {
    const LifetimeReport a = run_once(cluster::SimEngine::Trace, 2, Policy::Ladder, 7);
    const LifetimeReport b = run_once(cluster::SimEngine::Trace, 2, Policy::Ladder, 8);
    EXPECT_NE(as_json(a), as_json(b));
}

TEST(Lifetime, BaselineShipsWhatTheLadderCatches) {
    const LifetimeReport rep = run_once(cluster::SimEngine::Trace, 4, Policy::Baseline);
    std::uint64_t rollbacks = 0;
    for (const PhaseReport& p : rep.phases) rollbacks += p.rollbacks;
    // The unverified device never rolls back; its failures surface as SDC
    // or fail-stops instead (exact counts are seed-dependent, so only the
    // structural property is pinned here — the bench gates the numbers).
    EXPECT_EQ(rollbacks, 0u);
    // Corrupt samples can only come from SDC blocks.
    if (rep.sdc_blocks == 0) EXPECT_EQ(rep.link.samples_delivered_corrupt, 0u);
    EXPECT_GT(rep.delivered_fraction, 0.0);
}

TEST(Lifetime, DaysCyclesTheScript) {
    DeviceConfig dc;
    dc.seed = 3;
    dc.policy = Policy::Ladder;
    dc.max_days = 480.0 / 86400.0; // two passes of the 240 s script
    LifetimeEngine eng(script(), dc);
    sweep::SweepRunner pool(2);
    const LifetimeReport rep = eng.run(pool);
    EXPECT_EQ(rep.total_blocks, 240u);
    // Both passes land in the same per-phase aggregates.
    EXPECT_EQ(rep.phases.size(), 4u);
    EXPECT_EQ(rep.phases[0].blocks, 60u);
}

} // namespace
} // namespace ulpmc::scenario
