// Durable-execution resume for the lifetime engine (DESIGN.md §9.6).
//
// The contract under test: the state LifeResume::on_chunk hands out at a
// chunk boundary is COMPLETE — a fresh engine restarted from it replays
// zero blocks and still finishes byte-identical (via the JSON artifact,
// the strongest equality the CLI exposes) to the uninterrupted run, and
// the states it emits from there on are byte-identical to the ones the
// uninterrupted run would have emitted. That is exactly what makes a
// SIGKILL-and---resume cycle of ulpmc-life invisible in the artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::scenario {
namespace {

/// Same eventful script as lifetime_test: ladder descent, storm strikes
/// (parallel struck-block path), drought buffering, recovery.
constexpr const char* kScript = R"(
block_period_s 2.0
battery_j 0.01
phase calm     60 harvest_uw=20
phase storm    60 lambda=2e-6 ble_loss=0.2 harvest_uw=20
phase drought  60 ble=down harvest_uw=300
phase recovery 60 ble_loss=0.02 harvest_uw=400
)";

Timeline script() {
    std::istringstream in(kScript);
    return parse_timeline(in);
}

DeviceConfig device(Policy policy) {
    DeviceConfig dc;
    dc.seed = 7;
    dc.policy = policy;
    return dc;
}

std::string as_json(const LifetimeReport& rep) {
    std::ostringstream os;
    write_json(os, "test", {rep});
    return os.str();
}

/// One uninterrupted run capturing every chunk-boundary state.
std::vector<std::vector<std::uint8_t>> boundary_states(Policy policy, std::string* json) {
    std::vector<std::vector<std::uint8_t>> states;
    LifeResume hooks;
    hooks.on_chunk = [&](const std::vector<std::uint8_t>& s) { states.push_back(s); };
    LifetimeEngine eng(script(), device(policy));
    sweep::SweepRunner pool(2);
    const LifetimeReport rep = eng.run(pool, hooks);
    if (json) *json = as_json(rep);
    return states;
}

TEST(LifeResume, EveryBoundaryResumesByteIdentical) {
    for (const Policy policy : {Policy::Ladder, Policy::Baseline}) {
        std::string reference;
        const auto states = boundary_states(policy, &reference);
        // 120 blocks / 32-block chunks -> 4 boundaries, the last at the end.
        ASSERT_EQ(states.size(), 4u);
        for (const auto& state : states) {
            LifetimeEngine eng(script(), device(policy));
            sweep::SweepRunner pool(2);
            LifeResume hooks;
            hooks.state = state;
            EXPECT_EQ(as_json(eng.run(pool, hooks)), reference);
        }
    }
}

TEST(LifeResume, ResumedRunEmitsTheRemainingBoundaryStates) {
    // A resumed run must journal exactly what the uninterrupted run would
    // have journaled past the resume point — resume-of-resume depends on it.
    const auto states = boundary_states(Policy::Ladder, nullptr);
    ASSERT_GE(states.size(), 3u);
    LifetimeEngine eng(script(), device(Policy::Ladder));
    sweep::SweepRunner pool(1);
    LifeResume hooks;
    hooks.state = states[0];
    std::vector<std::vector<std::uint8_t>> tail;
    hooks.on_chunk = [&](const std::vector<std::uint8_t>& s) { tail.push_back(s); };
    eng.run(pool, hooks);
    ASSERT_EQ(tail.size(), states.size() - 1);
    for (std::size_t i = 0; i < tail.size(); ++i) EXPECT_EQ(tail[i], states[i + 1]) << i;
}

TEST(LifeResume, FinalBoundaryReplaysZeroChunks) {
    std::string reference;
    const auto states = boundary_states(Policy::Ladder, &reference);
    LifetimeEngine eng(script(), device(Policy::Ladder));
    sweep::SweepRunner pool(1);
    LifeResume hooks;
    hooks.state = states.back();
    unsigned chunks_run = 0;
    hooks.on_chunk = [&](const std::vector<std::uint8_t>&) { ++chunks_run; };
    const LifetimeReport rep = eng.run(pool, hooks);
    EXPECT_EQ(chunks_run, 0u) << "a finished run must not re-simulate anything";
    EXPECT_EQ(as_json(rep), reference);
}

TEST(LifeResume, BoundaryStatesAreDeterministic) {
    const auto a = boundary_states(Policy::Ladder, nullptr);
    const auto b = boundary_states(Policy::Ladder, nullptr);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace ulpmc::scenario
