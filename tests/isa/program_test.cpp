#include "isa/program.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::isa {
namespace {

TEST(Program, SymbolLookup) {
    Program p;
    p.set_symbol("a", {Symbol::Space::Text, 5});
    p.set_symbol("b", {Symbol::Space::Data, 9});
    EXPECT_EQ(p.text_addr("a"), 5);
    EXPECT_EQ(p.data_addr("b"), 9);
    EXPECT_FALSE(p.symbol("c").has_value());
}

TEST(Program, WrongSpaceAccessIsContractViolation) {
    Program p;
    p.set_symbol("a", {Symbol::Space::Text, 5});
    EXPECT_THROW(p.data_addr("a"), contract_violation);
    EXPECT_THROW(p.text_addr("missing"), contract_violation);
}

TEST(Program, FootprintAccounting) {
    Program p;
    p.text.resize(184); // the paper's 552-byte program
    p.data.resize(8461);
    EXPECT_EQ(p.text_bytes(), 552u);
    EXPECT_EQ(p.data_bytes(), 16922u); // the paper's per-lead data footprint
}

TEST(Program, SymbolOverwrite) {
    Program p;
    p.set_symbol("a", {Symbol::Space::Text, 1});
    p.set_symbol("a", {Symbol::Space::Data, 2});
    EXPECT_EQ(p.data_addr("a"), 2);
}

} // namespace
} // namespace ulpmc::isa
