#include "isa/listing.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace ulpmc::isa {
namespace {

Program sample() {
    return assemble(R"(
        .entry main
main:   movi r1, tbl
loop:   sub  r1, r1, #1
        bra  ne, loop
        hlt
        .data
tbl:    .word 0xBEEF, 2, 3
    )");
}

TEST(Listing, ContainsHeaderAddressesAndLabels) {
    const std::string lst = format_listing(sample());
    EXPECT_NE(lst.find("; 4 instructions (12 bytes), 3 data words, entry 0"), std::string::npos);
    EXPECT_NE(lst.find("main:"), std::string::npos);
    EXPECT_NE(lst.find("loop:"), std::string::npos);
    EXPECT_NE(lst.find("0000"), std::string::npos);
    EXPECT_NE(lst.find("hlt"), std::string::npos);
}

TEST(Listing, SymbolTableOptional) {
    ListingOptions no_syms;
    no_syms.with_symbols = false;
    const std::string with = format_listing(sample());
    const std::string without = format_listing(sample(), no_syms);
    EXPECT_NE(with.find("; symbols"), std::string::npos);
    EXPECT_EQ(without.find("; symbols"), std::string::npos);
    EXPECT_NE(with.find("tbl"), std::string::npos);
}

TEST(Listing, DataDumpOptional) {
    ListingOptions with_data;
    with_data.with_data = true;
    const std::string lst = format_listing(sample(), with_data);
    EXPECT_NE(lst.find("; data (hex words)"), std::string::npos);
    EXPECT_NE(lst.find("BEEF"), std::string::npos);
}

TEST(Listing, EveryInstructionGetsOneLine) {
    const Program p = sample();
    ListingOptions bare;
    bare.with_symbols = false;
    const std::string lst = format_listing(p, bare);
    std::size_t lines = 0;
    for (const char c : lst)
        if (c == '\n') ++lines;
    // header + one line per instruction + labels (main, loop).
    EXPECT_EQ(lines, 1 + p.text.size() + 2);
}

} // namespace
} // namespace ulpmc::isa
