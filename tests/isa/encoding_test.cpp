#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ulpmc::isa {
namespace {

/// Draws a random VALID instruction (used for round-trip property tests).
Instruction random_instruction(Rng& rng) {
    while (true) {
        Instruction in;
        in.op = static_cast<Opcode>(rng.below(12));
        switch (in.op) {
        case Opcode::MOVI:
            in.dst = dreg(rng.below(16));
            in.imm16 = static_cast<Word>(rng.next_u32());
            break;
        case Opcode::BRA:
        case Opcode::JAL: {
            // Only populate fields the opcode actually encodes: unused
            // fields stay value-initialized, as decode() leaves them.
            if (in.op == Opcode::BRA) {
                in.cond = static_cast<Cond>(rng.below(16));
            } else {
                in.link = static_cast<std::uint8_t>(rng.below(16));
            }
            in.bmode = static_cast<BraMode>(rng.below(3));
            if (in.bmode == BraMode::RegInd) {
                in.treg = static_cast<std::uint8_t>(rng.below(16));
            } else if (in.bmode == BraMode::Rel) {
                in.target = rng.range(-8192, 8191);
            } else {
                in.target = rng.range(0, 16383);
            }
            break;
        }
        case Opcode::MOV: {
            in.dst.mode = static_cast<DstMode>(rng.below(4));
            in.dst.reg = static_cast<std::uint8_t>(rng.below(16));
            in.srca.mode = static_cast<SrcMode>(rng.below(8));
            in.srca.reg = static_cast<std::uint8_t>(rng.below(16));
            const bool off = in.dst.mode == DstMode::IndOff || in.srca.mode == SrcMode::IndOff;
            in.moff = off ? static_cast<std::int8_t>(rng.range(-64, 63)) : 0;
            break;
        }
        default: // ALU
            in.dst.mode = static_cast<DstMode>(rng.below(3)); // no IndOff
            in.dst.reg = static_cast<std::uint8_t>(rng.below(16));
            in.srca.mode = static_cast<SrcMode>(rng.below(7)); // no IndOff
            in.srca.reg = static_cast<std::uint8_t>(rng.below(16));
            in.srcb.mode = static_cast<SrcMode>(rng.below(7));
            in.srcb.reg = static_cast<std::uint8_t>(rng.below(16));
            break;
        }
        if (!validate(in)) return in;
    }
}

TEST(Encoding, EncodesInto24Bits) {
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const InstrWord w = encode(random_instruction(rng));
        EXPECT_EQ(w & ~kInstrWordMask, 0u);
    }
}

TEST(Encoding, RoundTripProperty) {
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        const Instruction in = random_instruction(rng);
        const auto back = decode(encode(in));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, in) << "iteration " << i;
    }
}

TEST(Encoding, OpcodeFieldPosition) {
    // The paper stresses fixed field positions; the opcode is [23:20].
    EXPECT_EQ(encode(make_movi(0, 0)) >> 20, static_cast<InstrWord>(Opcode::MOVI));
    EXPECT_EQ(encode(make_hlt()) >> 20, static_cast<InstrWord>(Opcode::BRA));
    EXPECT_EQ(encode(make_alu(Opcode::XOR, dreg(0), sreg(0), sreg(0))) >> 20,
              static_cast<InstrWord>(Opcode::XOR));
}

TEST(Encoding, MoviFieldLayout) {
    const InstrWord w = encode(make_movi(0xA, 0xBEEF));
    EXPECT_EQ(w, (static_cast<InstrWord>(Opcode::MOVI) << 20) | (0xAu << 16) | 0xBEEFu);
}

TEST(Encoding, RejectsReservedOpcodes) {
    for (std::uint32_t op = 12; op < 16; ++op) {
        std::string err;
        EXPECT_FALSE(decode(op << 20, err).has_value());
        EXPECT_NE(err.find("reserved opcode"), std::string::npos);
    }
}

TEST(Encoding, RejectsOver24BitWords) {
    std::string err;
    EXPECT_FALSE(decode(0x01000000u, err).has_value());
}

TEST(Encoding, RejectsReservedBranchMode) {
    // BRA with bmode field == 3.
    const InstrWord w = (static_cast<InstrWord>(Opcode::BRA) << 20) | (3u << 14);
    std::string err;
    EXPECT_FALSE(decode(w, err).has_value());
    EXPECT_NE(err.find("branch mode"), std::string::npos);
}

TEST(Encoding, RejectsIllegalOperandCombos) {
    // Two memory sources violate the port budget and must not decode.
    InstrWord w = static_cast<InstrWord>(Opcode::ADD) << 20;
    // srcA mode = Ind (1), srcB mode = Ind (1)
    w |= 1u << 11;
    w |= 1u << 4;
    EXPECT_FALSE(decode(w).has_value());
}

TEST(Encoding, NegativeBranchOffsetsSurvive) {
    const auto in = make_bra(Cond::LT, BraMode::Rel, -1);
    const auto back = decode(encode(in));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->target, -1);
}

TEST(Encoding, NegativeMovOffsetsSurvive) {
    const auto in = make_mov(dreg(3), soff(4), -64);
    const auto back = decode(encode(in));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->moff, -64);
}

TEST(Encoding, EncodeInvalidInstructionIsContractViolation) {
    Instruction in;
    in.op = Opcode::ADD;
    in.srca = sind(1);
    in.srcb = sind(2); // two memory sources
    EXPECT_THROW(encode(in), contract_violation);
}

/// Exhaustive sweep: every 24-bit word either fails to decode or
/// round-trips through encode() to the identical word. This pins the
/// encoding bijection on its entire domain (16.7M words).
TEST(Encoding, ExhaustiveDecodeEncodeConsistency) {
    std::uint64_t legal = 0;
    for (InstrWord w = 0; w <= kInstrWordMask; ++w) {
        const auto in = decode(w);
        if (!in) continue;
        ++legal;
        ASSERT_EQ(encode(*in), w) << "word 0x" << std::hex << w;
    }
    // Sanity: a healthy fraction of the space decodes.
    EXPECT_GT(legal, 1'000'000u);
}

} // namespace
} // namespace ulpmc::isa
