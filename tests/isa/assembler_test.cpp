#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/encoding.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::isa {
namespace {

Instruction first_instr(const Program& p, std::size_t i = 0) {
    const auto in = decode(p.text.at(i));
    EXPECT_TRUE(in.has_value());
    return *in;
}

TEST(Assembler, EmptySourceGivesEmptyProgram) {
    const Program p = assemble("; nothing here\n\n   \n");
    EXPECT_TRUE(p.text.empty());
    EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, AluThreeOperands) {
    const Program p = assemble("add r1, r2, r3");
    EXPECT_EQ(first_instr(p), make_alu(Opcode::ADD, dreg(1), sreg(2), sreg(3)));
}

TEST(Assembler, AllAluMnemonics) {
    const Program p = assemble(R"(
        add r1, r2, r3
        sub r1, r2, r3
        sft r1, r2, r3
        and r1, r2, r3
        or  r1, r2, r3
        xor r1, r2, r3
        mull r1, r2, r3
        mulh r1, r2, r3
    )");
    ASSERT_EQ(p.text.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(static_cast<Opcode>(i), first_instr(p, i).op);
}

TEST(Assembler, AddressingModes) {
    const Program p = assemble(R"(
        add r1, @r2, r3
        add r1, @r2+, r3
        add r1, @r2-, r3
        add r1, @+r2, r3
        add r1, @-r2, r3
        add r1, #7, r3
        add @r1, r2, r3
        add @r1+, r2, r3
    )");
    EXPECT_EQ(first_instr(p, 0).srca.mode, SrcMode::Ind);
    EXPECT_EQ(first_instr(p, 1).srca.mode, SrcMode::IndPostInc);
    EXPECT_EQ(first_instr(p, 2).srca.mode, SrcMode::IndPostDec);
    EXPECT_EQ(first_instr(p, 3).srca.mode, SrcMode::IndPreInc);
    EXPECT_EQ(first_instr(p, 4).srca.mode, SrcMode::IndPreDec);
    EXPECT_EQ(first_instr(p, 5).srca.mode, SrcMode::Imm4);
    EXPECT_EQ(first_instr(p, 5).srca.reg, 7);
    EXPECT_EQ(first_instr(p, 6).dst.mode, DstMode::Ind);
    EXPECT_EQ(first_instr(p, 7).dst.mode, DstMode::IndPostInc);
}

TEST(Assembler, MovWithOffsets) {
    const Program p = assemble(R"(
        mov r1, @r2+5
        mov r1, @r2-5
        mov @r3+1, r4
    )");
    EXPECT_EQ(first_instr(p, 0).srca.mode, SrcMode::IndOff);
    EXPECT_EQ(first_instr(p, 0).moff, 5);
    EXPECT_EQ(first_instr(p, 1).moff, -5);
    EXPECT_EQ(first_instr(p, 2).dst.mode, DstMode::IndOff);
    EXPECT_EQ(first_instr(p, 2).moff, 1);
}

TEST(Assembler, OffsetOutsideMovFails) {
    EXPECT_THROW(assemble("add r1, @r2+5, r3"), AssemblyError);
}

TEST(Assembler, MoviNumberFormats) {
    const Program p = assemble(R"(
        movi r1, 1234
        movi r2, 0xBEEF
        movi r3, 0b1010
        movi r4, -1
    )");
    EXPECT_EQ(first_instr(p, 0).imm16, 1234);
    EXPECT_EQ(first_instr(p, 1).imm16, 0xBEEF);
    EXPECT_EQ(first_instr(p, 2).imm16, 10);
    EXPECT_EQ(first_instr(p, 3).imm16, 0xFFFF);
}

TEST(Assembler, BranchesAndConditions) {
    const Program p = assemble(R"(
    top:  nop
          bra ne, top
          bra top
          bra lt, @r5
          bra al, =100
    )");
    EXPECT_EQ(first_instr(p, 1).cond, Cond::NE);
    EXPECT_EQ(first_instr(p, 1).target, -1);
    EXPECT_EQ(first_instr(p, 2).cond, Cond::AL);
    EXPECT_EQ(first_instr(p, 2).target, -2);
    EXPECT_EQ(first_instr(p, 3).bmode, BraMode::RegInd);
    EXPECT_EQ(first_instr(p, 3).treg, 5);
    EXPECT_EQ(first_instr(p, 4).bmode, BraMode::Abs);
    EXPECT_EQ(first_instr(p, 4).target, 100);
}

TEST(Assembler, ForwardReferences) {
    const Program p = assemble(R"(
          bra al, fwd
          nop
    fwd:  hlt
    )");
    EXPECT_EQ(first_instr(p, 0).target, 2);
}

TEST(Assembler, JalAndRet) {
    const Program p = assemble(R"(
          jal r14, func
          hlt
    func: ret r14
    )");
    EXPECT_EQ(first_instr(p, 0).op, Opcode::JAL);
    EXPECT_EQ(first_instr(p, 0).link, 14);
    EXPECT_EQ(first_instr(p, 0).bmode, BraMode::Abs);
    EXPECT_EQ(first_instr(p, 0).target, 2);
    EXPECT_EQ(first_instr(p, 2).bmode, BraMode::RegInd);
    EXPECT_EQ(first_instr(p, 2).treg, 14);
}

TEST(Assembler, DataSectionAndSymbols) {
    const Program p = assemble(R"(
            movi r1, buf
            hlt
            .data
            .word 1, 2, 3
    buf:    .word 0xAAAA
            .space 4
            .align 8
    tail:   .word 7
    )");
    EXPECT_EQ(p.data_addr("buf"), 3);
    EXPECT_EQ(p.data.at(3), 0xAAAA);
    EXPECT_EQ(p.data_addr("tail"), 8); // aligned up
    EXPECT_EQ(first_instr(p, 0).imm16, 3);
}

TEST(Assembler, EquConstants) {
    const Program p = assemble(R"(
            .equ BASE, 0x100
            .equ COUNT, 12
            movi r1, BASE
            add  r2, r2, #3
            movi r3, COUNT
    )");
    EXPECT_EQ(first_instr(p, 0).imm16, 0x100);
    EXPECT_EQ(first_instr(p, 2).imm16, 12);
}

TEST(Assembler, EntryDirective) {
    const Program p = assemble(R"(
            .entry main
            nop
    main:   hlt
    )");
    EXPECT_EQ(p.entry, 1);
}

TEST(Assembler, HltNopEncodings) {
    const Program p = assemble("hlt\nnop\n");
    EXPECT_EQ(first_instr(p, 0), make_hlt());
    EXPECT_EQ(first_instr(p, 1), make_nop());
}

struct BadSource {
    const char* src;
    const char* why;
};

class AssemblerErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(AssemblerErrors, Rejects) {
    EXPECT_THROW(assemble(GetParam().src), AssemblyError) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    BadSources, AssemblerErrors,
    ::testing::Values(
        BadSource{"frobnicate r1, r2", "unknown mnemonic"},
        BadSource{"add r1, r2", "arity"},
        BadSource{"add r16, r2, r3", "register range"},
        BadSource{"add r1, #16, r2", "imm4 range"},
        BadSource{"add r1, @r2, @r3", "two memory sources"},
        BadSource{"mov r1, @r2+100", "offset range"},
        BadSource{"bra xx, somewhere", "unknown condition"},
        BadSource{"bra al, nowhere", "undefined label"},
        BadSource{"movi r1", "movi arity"},
        BadSource{".word 1", ".word in text section"},
        BadSource{".data\n.word", ".word without values"},
        BadSource{".space 2", ".space in text section"},
        BadSource{".frob 1", "unknown directive"},
        BadSource{"x: nop\nx: nop", "duplicate label"},
        BadSource{".equ a, 1\n.equ a, 2", "duplicate equ"},
        BadSource{".entry nowhere\nnop", "undefined entry"},
        BadSource{"add @r1-, r2, r3", "postdec store dest unsupported"},
        BadSource{"9bad: nop", "invalid label"}));

TEST(Assembler, ErrorCarriesLineNumber) {
    try {
        assemble("nop\nnop\nbogus r1\n");
        FAIL();
    } catch (const AssemblyError& e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

} // namespace
} // namespace ulpmc::isa
