// Unit tests for the basic-block map feeding the trace engine: leader
// placement, memo aggregates, and the discovery edge cases named in
// DESIGN.md §10 — self-loop blocks, branches into the middle of a block
// (register-indirect, resolved by the suffix query), and rebuild-on-patch.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/blockmap.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::isa {
namespace {

TEST(BlockMap, StraightLineProgramIsOneBlockPerBranch) {
    const auto prog = assemble(R"(
            movi r1, 512
            add  r3, r3, #1
            mov  @r1+, r3
    done:   bra  al, done
    )");
    BlockMap bm(prog.text);
    // Instructions 0..2 fall through into the halt, but `done` is the
    // target of the self-branch, so it leads its own block.
    ASSERT_EQ(bm.block_count(), 2u);
    const BlockInfo& body = bm.block_at(0);
    EXPECT_EQ(body.start, 0u);
    EXPECT_EQ(body.len, 3u);
    EXPECT_EQ(body.loads, 0u);
    EXPECT_EQ(body.stores, 1u);
    EXPECT_FALSE(body.mem_free);
    EXPECT_TRUE(body.memo_ok);
}

TEST(BlockMap, SelfLoopIsItsOwnSingleInstructionBlock) {
    const auto prog = assemble(R"(
            movi r1, 5
    done:   bra  al, done
    )");
    BlockMap bm(prog.text);
    ASSERT_EQ(bm.block_count(), 2u);
    const BlockInfo& halt = bm.block_at(1);
    EXPECT_EQ(halt.start, 1u);
    EXPECT_EQ(halt.len, 1u);
    EXPECT_TRUE(halt.mem_free);
    EXPECT_TRUE(halt.memo_ok);
    EXPECT_EQ(bm.run_from(1), 1u);
}

TEST(BlockMap, LoopBodyBoundariesAndAggregates) {
    const auto prog = assemble(R"(
            movi r1, 512
            movi r2, 10
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            mov  r5, @r1
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    BlockMap bm(prog.text);
    ASSERT_EQ(bm.block_count(), 3u);
    const BlockInfo& head = bm.block_at(0);
    EXPECT_EQ(head.len, 2u);
    EXPECT_TRUE(head.mem_free);
    const BlockInfo& loop = bm.block_at(2);
    EXPECT_EQ(loop.start, 2u);
    EXPECT_EQ(loop.len, 5u); // add, store, load, sub, bra — branch inclusive
    EXPECT_EQ(loop.loads, 1u);
    EXPECT_EQ(loop.stores, 1u);
    EXPECT_FALSE(loop.mem_free);
    EXPECT_TRUE(loop.memo_ok);
    // Mid-block suffix run (what a register-indirect branch into the loop
    // body would see): from the load (pc 4) to the branch inclusive.
    EXPECT_EQ(bm.run_from(4), 3u);
    EXPECT_EQ(&bm.block_at(4), &loop);
}

TEST(BlockMap, IllegalWordPoisonsOnlyItsBlock) {
    auto prog = assemble(R"(
            movi r1, 5
            add  r3, r3, #1
    done:   bra  al, done
    )");
    prog.text[1] = 0x00FFFFFFu; // reserved encoding
    BlockMap bm(prog.text);
    ASSERT_EQ(bm.block_count(), 2u);
    EXPECT_FALSE(bm.block_at(0).memo_ok);
    EXPECT_EQ(bm.run_from(0), 0u);
    EXPECT_TRUE(bm.block_at(2).memo_ok) << "halt block unaffected";
}

TEST(BlockMap, DualPortMovBlocksMemoButNotDiscovery) {
    // `mov @r2, @r1` claims both DM ports in one cycle: its block cannot be
    // memoized (the trace engine's conflict-free proof assumes <= 1 port),
    // but block boundaries are unaffected.
    const auto prog = assemble(R"(
            movi r1, 512
            mov  @r2, @r1
    done:   bra  al, done
    )");
    BlockMap bm(prog.text);
    const BlockInfo& body = bm.block_at(0);
    EXPECT_EQ(body.len, 2u);
    EXPECT_EQ(body.loads, 1u);
    EXPECT_EQ(body.stores, 1u);
    EXPECT_FALSE(body.memo_ok);
    EXPECT_EQ(bm.run_from(0), 0u);
}

TEST(BlockMap, RebuildTracksPatchedText) {
    auto prog = assemble(R"(
            movi r1, 5
            add  r3, r3, #1
            add  r3, r3, #2
    done:   bra  al, done
    )");
    BlockMap bm(prog.text);
    ASSERT_EQ(bm.block_count(), 2u);
    EXPECT_EQ(bm.run_from(0), 3u);

    // Patch the middle add into a branch: the map must re-partition (new
    // terminator at 1, new leader at 2).
    const auto patched = assemble(R"(
            movi r1, 5
    self:   bra  al, self
            add  r3, r3, #2
    done:   bra  al, done
    )");
    prog.text[1] = patched.text[1];
    bm.rebuild(prog.text);
    // New terminator at 1 AND new leader at 1 (the self-branch targets
    // itself): movi | self-loop | add | halt.
    ASSERT_EQ(bm.block_count(), 4u);
    EXPECT_EQ(bm.block_at(0).len, 1u);
    EXPECT_EQ(bm.block_at(1).len, 1u);
    EXPECT_EQ(bm.block_at(2).start, 2u);
    EXPECT_EQ(bm.run_from(0), 1u);
}

TEST(BlockMap, EmptyTextYieldsNoBlocks) {
    BlockMap bm;
    EXPECT_EQ(bm.block_count(), 0u);
    EXPECT_EQ(bm.text_size(), 0u);
}

} // namespace
} // namespace ulpmc::isa
