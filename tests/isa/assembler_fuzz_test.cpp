// Assembler robustness fuzzing: arbitrary byte soup must either assemble
// (if it happens to be valid) or raise AssemblyError with a line number —
// never crash, hang, or corrupt state. Runs a deterministic corpus of
// random printable garbage, structured near-miss programs, and torture
// whitespace/comment cases.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::isa {
namespace {

TEST(AssemblerFuzz, RandomPrintableGarbageNeverCrashes) {
    Rng rng(2718);
    const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789 ,.@#+-:;\n\trx()=";
    for (int iter = 0; iter < 500; ++iter) {
        std::string src;
        const unsigned len = rng.below(200);
        for (unsigned i = 0; i < len; ++i)
            src.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
        try {
            const Program p = assemble(src);
            // If it assembled, the output must be structurally sane.
            EXPECT_LE(p.entry, p.text.size());
        } catch (const AssemblyError& e) {
            EXPECT_GE(e.line(), 1u);
        }
        // Anything else escaping is a bug (caught by the test framework).
    }
}

TEST(AssemblerFuzz, NearMissPrograms) {
    Rng rng(3141);
    const char* fragments[] = {
        "add", "r1", "r16", "#5", "#16", "@r2", "@r2+", "@+r2", "@r2+99", "movi", "bra",
        "ne", "loop", "loop:", ".data", ".text", ".word", ".space", "0x", "0xFFFF", "-1",
        "hlt", "jal", "r14", ",", ",,", ";x", "mov", "=5", "@", "mull",
    };
    for (int iter = 0; iter < 500; ++iter) {
        std::string src;
        const unsigned parts = 2 + rng.below(12);
        for (unsigned i = 0; i < parts; ++i) {
            src += fragments[rng.below(std::size(fragments))];
            src += rng.below(4) == 0 ? "\n" : " ";
        }
        try {
            (void)assemble(src);
        } catch (const AssemblyError&) {
            // expected for most inputs
        }
    }
}

TEST(AssemblerFuzz, WhitespaceAndCommentTorture) {
    const Program p = assemble("\t\t  add\tr1 ,   r2,r3   ; trailing ;; comment\n"
                               "\n\n;\n;;;\n"
                               "   x:\ty:  hlt\n");
    EXPECT_EQ(p.text.size(), 2u);
    EXPECT_EQ(p.text_addr("x"), 1u);
    EXPECT_EQ(p.text_addr("y"), 1u);
}

TEST(AssemblerFuzz, HugeNumbersRejectedNotWrapped) {
    EXPECT_THROW(assemble("movi r1, 99999999999999999"), AssemblyError);
    EXPECT_THROW(assemble("bra al, =99999999"), AssemblyError);
}

TEST(AssemblerFuzz, EmptyOperandsRejected) {
    EXPECT_THROW(assemble("add r1,, r2"), AssemblyError);
    EXPECT_THROW(assemble("mov , r2"), AssemblyError);
    EXPECT_THROW(assemble("movi r1,"), AssemblyError);
}

TEST(AssemblerFuzz, DeeplyNestedLabelsChains) {
    std::string src;
    for (int i = 0; i < 100; ++i) src += "l" + std::to_string(i) + ":";
    src += " hlt\n";
    const Program p = assemble(src);
    EXPECT_EQ(p.symbols().size(), 100u);
    EXPECT_EQ(p.text.size(), 1u);
}

} // namespace
} // namespace ulpmc::isa
