#include "isa/binfmt.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace ulpmc::isa {
namespace {

Program sample_program() {
    return assemble(R"(
        .entry main
        nop
    main:
        movi r1, tbl
        mov  r2, @r1+
        hlt
        .data
        .word 1
    tbl:  .word 0xBEEF, 0xCAFE
    )");
}

TEST(BinFmt, RoundTripPreservesEverything) {
    const Program p = sample_program();
    const auto bytes = save_program(p);
    const auto back = load_program(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->text, p.text);
    EXPECT_EQ(back->data, p.data);
    EXPECT_EQ(back->entry, p.entry);
    EXPECT_EQ(back->symbols().size(), p.symbols().size());
    EXPECT_EQ(back->data_addr("tbl"), p.data_addr("tbl"));
    EXPECT_EQ(back->text_addr("main"), p.text_addr("main"));
}

TEST(BinFmt, RoundTripOfEmptyProgram) {
    Program p;
    p.text.push_back(0x800000u); // hlt
    const auto back = load_program(save_program(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->text, p.text);
    EXPECT_TRUE(back->data.empty());
}

TEST(BinFmt, DetectsBadMagic) {
    auto bytes = save_program(sample_program());
    bytes[0] = 'X';
    std::string err;
    EXPECT_FALSE(load_program(bytes, err).has_value());
    EXPECT_EQ(err, "bad magic");
}

TEST(BinFmt, DetectsCorruptionAnywhere) {
    const auto pristine = save_program(sample_program());
    // Flip one bit in several positions: CRC must catch each.
    for (const std::size_t pos : {std::size_t{8}, std::size_t{15}, std::size_t{20},
                                  pristine.size() / 2, pristine.size() - 6}) {
        auto bytes = pristine;
        bytes[pos] ^= 0x40;
        std::string err;
        EXPECT_FALSE(load_program(bytes, err).has_value()) << "pos " << pos;
    }
}

TEST(BinFmt, DetectsTruncation) {
    const auto pristine = save_program(sample_program());
    for (std::size_t keep = 0; keep < pristine.size(); keep += 7) {
        const std::vector<std::uint8_t> cut(pristine.begin(),
                                            pristine.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(load_program(cut).has_value()) << "kept " << keep;
    }
}

TEST(BinFmt, DetectsBadVersion) {
    auto bytes = save_program(sample_program());
    bytes[4] ^= 0xFF; // version low byte
    std::string err;
    EXPECT_FALSE(load_program(bytes, err).has_value());
}

TEST(BinFmt, Crc32KnownVector) {
    // The classic test vector: CRC-32("123456789") = 0xCBF43926.
    const char* s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(BinFmt, TextWordsAre24Bit) {
    const auto bytes = save_program(sample_program());
    const auto back = load_program(bytes);
    ASSERT_TRUE(back.has_value());
    for (const InstrWord w : back->text) EXPECT_EQ(w & ~kInstrWordMask, 0u);
}

TEST(BinFmt, LoadedImageExecutesIdentically) {
    const Program p = sample_program();
    const auto back = load_program(save_program(p));
    ASSERT_TRUE(back.has_value());
    // (Decoding is covered elsewhere; here: the images are bytewise equal,
    // so a second save must reproduce the same bytes.)
    EXPECT_EQ(save_program(*back), save_program(p));
}

} // namespace
} // namespace ulpmc::isa
