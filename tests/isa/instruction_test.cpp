#include "isa/instruction.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::isa {
namespace {

TEST(InstructionValidate, AcceptsSimpleAlu) {
    const auto in = make_alu(Opcode::ADD, dreg(1), sreg(2), sreg(3));
    EXPECT_FALSE(validate(in).has_value());
}

TEST(InstructionValidate, RejectsTwoMemorySources) {
    Instruction in;
    in.op = Opcode::ADD;
    in.dst = dreg(1);
    in.srca = sind(2);
    in.srcb = spostinc(3);
    const auto err = validate(in);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("data-read port"), std::string::npos);
}

TEST(InstructionValidate, AllowsOneMemorySourcePlusMemoryDest) {
    // One read + one write: within the 3-port budget.
    const auto in = make_alu(Opcode::ADD, dpostinc(1), spostinc(2), sreg(3));
    EXPECT_FALSE(validate(in).has_value());
    EXPECT_EQ(data_reads(in), 1u);
    EXPECT_EQ(data_writes(in), 1u);
}

TEST(InstructionValidate, RejectsOffsetModeOutsideMov) {
    Instruction in;
    in.op = Opcode::ADD;
    in.dst = dreg(1);
    in.srca = soff(2);
    in.srcb = sreg(3);
    EXPECT_TRUE(validate(in).has_value());

    Instruction st;
    st.op = Opcode::XOR;
    st.dst = {DstMode::IndOff, 1};
    st.srca = sreg(2);
    st.srcb = sreg(3);
    EXPECT_TRUE(validate(st).has_value());
}

TEST(InstructionValidate, MovAllowsOffsetOnExactlyOneOperand) {
    EXPECT_FALSE(validate(make_mov(dreg(1), soff(2), 5)).has_value());
    EXPECT_FALSE(validate(make_mov(doff(1), sreg(2), -3)).has_value());

    Instruction both;
    both.op = Opcode::MOV;
    both.dst = {DstMode::IndOff, 1};
    both.srca = soff(2);
    both.moff = 1;
    EXPECT_TRUE(validate(both).has_value());
}

TEST(InstructionValidate, MovOffsetRange) {
    Instruction in;
    in.op = Opcode::MOV;
    in.dst = dreg(1);
    in.srca = soff(2);
    in.moff = 63;
    EXPECT_FALSE(validate(in).has_value());
    in.moff = -64;
    EXPECT_FALSE(validate(in).has_value());
}

TEST(InstructionValidate, MovStrayOffsetRejected) {
    Instruction in;
    in.op = Opcode::MOV;
    in.dst = dreg(1);
    in.srca = sreg(2);
    in.moff = 3; // no operand consumes it
    EXPECT_TRUE(validate(in).has_value());
}

TEST(InstructionValidate, BranchOffsetRange) {
    EXPECT_FALSE(validate(make_bra(Cond::AL, BraMode::Rel, 8191)).has_value());
    EXPECT_FALSE(validate(make_bra(Cond::AL, BraMode::Rel, -8192)).has_value());
    Instruction in = make_bra(Cond::AL, BraMode::Rel, 0);
    in.target = 8192;
    EXPECT_TRUE(validate(in).has_value());
    in.target = -8193;
    EXPECT_TRUE(validate(in).has_value());
}

TEST(InstructionValidate, AbsBranchRange) {
    EXPECT_FALSE(validate(make_bra(Cond::NE, BraMode::Abs, 16383)).has_value());
    Instruction in = make_bra(Cond::NE, BraMode::Abs, 0);
    in.target = 16384;
    EXPECT_TRUE(validate(in).has_value());
    in.target = -1;
    EXPECT_TRUE(validate(in).has_value());
}

TEST(InstructionValidate, MoviMustTargetRegister) {
    Instruction in = make_movi(3, 0x1234);
    in.dst.mode = DstMode::Ind;
    EXPECT_TRUE(validate(in).has_value());
}

TEST(InstructionFactories, RejectBadRegisterIndices) {
    EXPECT_THROW(sreg(16), contract_violation);
    EXPECT_THROW(dreg(16), contract_violation);
    EXPECT_THROW(simm(16), contract_violation);
    EXPECT_THROW(simm(-9), contract_violation);
}

TEST(InstructionPorts, CountsPerOpcode) {
    EXPECT_EQ(data_reads(make_movi(0, 1)), 0u);
    EXPECT_EQ(data_writes(make_movi(0, 1)), 0u);
    EXPECT_EQ(data_reads(make_bra(Cond::AL, BraMode::Rel, 1)), 0u);
    EXPECT_EQ(data_reads(make_mov(dreg(0), sind(1))), 1u);
    EXPECT_EQ(data_writes(make_mov(dind(0), sreg(1))), 1u);
    EXPECT_EQ(data_reads(make_mov(dind(0), sind(1))), 1u);
    EXPECT_EQ(data_writes(make_mov(dind(0), sind(1))), 1u);
}

TEST(InstructionHelpers, HltAndNopShapes) {
    const auto h = make_hlt();
    EXPECT_EQ(h.op, Opcode::BRA);
    EXPECT_EQ(h.cond, Cond::AL);
    EXPECT_EQ(h.target, 0);
    const auto n = make_nop();
    EXPECT_EQ(n.cond, Cond::NV);
}

TEST(InstructionHelpers, IsAluCoversExactlyEight) {
    int count = 0;
    for (int op = 0; op <= static_cast<int>(Opcode::MOVI); ++op)
        if (is_alu(static_cast<Opcode>(op))) ++count;
    EXPECT_EQ(count, 8);
    EXPECT_FALSE(is_alu(Opcode::BRA));
    EXPECT_FALSE(is_alu(Opcode::MOV));
}

} // namespace
} // namespace ulpmc::isa
