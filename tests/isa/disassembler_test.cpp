#include "isa/disassembler.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::isa {
namespace {

TEST(Disassembler, AluRendering) {
    EXPECT_EQ(disassemble(make_alu(Opcode::ADD, dreg(1), spostinc(2), simm(5))),
              "add r1, @r2+, #5");
    EXPECT_EQ(disassemble(make_alu(Opcode::MULH, dpostinc(3), sreg(4), spredec(5))),
              "mulh @r3+, r4, @-r5");
}

TEST(Disassembler, MovRendering) {
    EXPECT_EQ(disassemble(make_mov(dreg(1), soff(2), -3)), "mov r1, @r2-3");
    EXPECT_EQ(disassemble(make_mov(doff(1), sreg(2), 4)), "mov @r1+4, r2");
    EXPECT_EQ(disassemble(make_movi(7, 1234)), "movi r7, 1234");
}

TEST(Disassembler, BranchRendering) {
    EXPECT_EQ(disassemble(make_bra(Cond::NE, BraMode::Rel, -3), 10), "bra ne, -3  ; -> 7");
    EXPECT_EQ(disassemble(make_bra(Cond::GT, BraMode::Abs, 100)), "bra gt, =100");
    EXPECT_EQ(disassemble(make_bra(Cond::CS, BraMode::RegInd, 5)), "bra cs, @r5");
}

TEST(Disassembler, SpecialForms) {
    EXPECT_EQ(disassemble(make_hlt()), "hlt");
    EXPECT_EQ(disassemble(make_nop()), "nop");
}

TEST(Disassembler, IllegalWordRendersAsData) {
    EXPECT_EQ(disassemble_word(0xF00000u), ".word 0xF00000");
}

/// Property: disassembling any legal word produces text the assembler
/// accepts, and reassembling gives back a semantically equal instruction.
/// (Relative branches are rendered with a comment, which the assembler's
/// numeric-offset branch syntax consumes fine once the comment is kept.)
TEST(Disassembler, ReassemblyRoundTrip) {
    Rng rng(99);
    int tested = 0;
    while (tested < 5000) {
        const InstrWord w = rng.next_u32() & kInstrWordMask;
        const auto in = decode(w);
        if (!in) continue;
        ++tested;
        const std::string text = disassemble(*in, 0);
        Program p;
        ASSERT_NO_THROW(p = assemble(text)) << text;
        ASSERT_EQ(p.text.size(), 1u) << text;
        EXPECT_EQ(p.text[0], w) << text;
    }
}

} // namespace
} // namespace ulpmc::isa
