#include "isa/asm_builder.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::isa {
namespace {

TEST(AsmBuilder, ForwardBranchFixup) {
    AsmBuilder b;
    b.bra(Cond::AL, "end");
    b.nop();
    b.label("end");
    b.hlt();
    const Program p = b.finish();
    const auto in = decode(p.text[0]);
    ASSERT_TRUE(in);
    EXPECT_EQ(in->target, 2);
}

TEST(AsmBuilder, BackwardBranchFixup) {
    AsmBuilder b;
    b.label("top");
    b.nop();
    b.bra(Cond::NE, "top");
    const Program p = b.finish();
    const auto in = decode(p.text[1]);
    ASSERT_TRUE(in);
    EXPECT_EQ(in->target, -1);
}

TEST(AsmBuilder, MoviDataFixup) {
    AsmBuilder b;
    b.movi_data(3, "tbl");
    b.hlt();
    b.space(10);
    b.data_label("tbl");
    b.word(42);
    const Program p = b.finish();
    const auto in = decode(p.text[0]);
    ASSERT_TRUE(in);
    EXPECT_EQ(in->imm16, 10);
    EXPECT_EQ(p.data.at(10), 42);
}

TEST(AsmBuilder, MoviTextFixup) {
    AsmBuilder b;
    b.movi_text(2, "fn");
    b.hlt();
    b.label("fn");
    b.ret(2);
    const Program p = b.finish();
    const auto in = decode(p.text[0]);
    ASSERT_TRUE(in);
    EXPECT_EQ(in->imm16, 2);
}

TEST(AsmBuilder, JalFixupIsAbsolute) {
    AsmBuilder b;
    b.jal(14, "fn");
    b.hlt();
    b.label("fn");
    b.ret(14);
    const Program p = b.finish();
    const auto in = decode(p.text[0]);
    ASSERT_TRUE(in);
    EXPECT_EQ(in->bmode, BraMode::Abs);
    EXPECT_EQ(in->target, 2);
}

TEST(AsmBuilder, UndefinedLabelFailsAtFinish) {
    AsmBuilder b;
    b.bra(Cond::AL, "nowhere");
    EXPECT_THROW(b.finish(), contract_violation);
}

TEST(AsmBuilder, DuplicateLabelRejected) {
    AsmBuilder b;
    b.label("x");
    b.nop();
    EXPECT_THROW(b.label("x"), contract_violation);
}

TEST(AsmBuilder, WrongSymbolSpaceRejected) {
    AsmBuilder b;
    b.movi_data(1, "code"); // "code" is a TEXT label
    b.label("code");
    b.hlt();
    EXPECT_THROW(b.finish(), contract_violation);
}

TEST(AsmBuilder, AlignAndSpace) {
    AsmBuilder b;
    b.word(1);
    b.align_data(4);
    EXPECT_EQ(b.data_here(), 4);
    b.space(3);
    EXPECT_EQ(b.data_here(), 7);
}

TEST(AsmBuilder, HereTracksText) {
    AsmBuilder b;
    EXPECT_EQ(b.here(), 0);
    b.nop();
    b.nop();
    EXPECT_EQ(b.here(), 2);
}

} // namespace
} // namespace ulpmc::isa
