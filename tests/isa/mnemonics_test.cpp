#include "isa/mnemonics.hpp"

#include <gtest/gtest.h>

namespace ulpmc::isa {
namespace {

TEST(Mnemonics, OpcodeNamesRoundTrip) {
    for (int op = 0; op <= static_cast<int>(Opcode::MOVI); ++op) {
        const auto name = opcode_name(static_cast<Opcode>(op));
        const auto back = parse_opcode(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, static_cast<Opcode>(op));
    }
}

TEST(Mnemonics, CondNamesRoundTrip) {
    for (int c = 0; c <= static_cast<int>(Cond::NV); ++c) {
        const auto name = cond_name(static_cast<Cond>(c));
        const auto back = parse_cond(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, static_cast<Cond>(c));
    }
}

TEST(Mnemonics, ParsingIsCaseInsensitive) {
    EXPECT_EQ(parse_opcode("ADD"), Opcode::ADD);
    EXPECT_EQ(parse_opcode("MuLl"), Opcode::MULL);
    EXPECT_EQ(parse_cond("NE"), Cond::NE);
    EXPECT_EQ(parse_cond("Al"), Cond::AL);
}

TEST(Mnemonics, UnknownNamesRejected) {
    EXPECT_FALSE(parse_opcode("madd").has_value());
    EXPECT_FALSE(parse_opcode("").has_value());
    EXPECT_FALSE(parse_cond("zz").has_value());
    EXPECT_FALSE(parse_cond("always").has_value());
}

TEST(Mnemonics, OperandRendering) {
    EXPECT_EQ(src_to_string(sreg(3)), "r3");
    EXPECT_EQ(src_to_string(sind(4)), "@r4");
    EXPECT_EQ(src_to_string(spostinc(5)), "@r5+");
    EXPECT_EQ(src_to_string(spostdec(6)), "@r6-");
    EXPECT_EQ(src_to_string(spreinc(7)), "@+r7");
    EXPECT_EQ(src_to_string(spredec(8)), "@-r8");
    EXPECT_EQ(src_to_string(simm(9)), "#9");
    EXPECT_EQ(src_to_string(soff(2), 5), "@r2+5");
    EXPECT_EQ(src_to_string(soff(2), -5), "@r2-5");
    EXPECT_EQ(dst_to_string(dreg(1)), "r1");
    EXPECT_EQ(dst_to_string(dind(2)), "@r2");
    EXPECT_EQ(dst_to_string(dpostinc(3)), "@r3+");
    EXPECT_EQ(dst_to_string(doff(4), -1), "@r4-1");
}

} // namespace
} // namespace ulpmc::isa
