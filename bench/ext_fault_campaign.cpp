// Extension: seeded fault-injection campaigns (DESIGN.md §9). For every
// architecture the same deterministic set of particle strikes is replayed
// twice — SEC-DED off and on — and classified. The headline table is
// coverage (fraction of strikes that did not end in silent data
// corruption) against the ECC energy overhead the calibrated power model
// charges, i.e. the dependability/energy trade the paper's near-threshold
// operating point forces.
//
// Usage: ext_fault_campaign [--injections N] [--seed S] [--json FILE]
//                           [--engine reference|fast|trace]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "fault/campaign.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

constexpr cluster::ArchKind kArchs[] = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                        cluster::ArchKind::UlpmcBank};

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

void write_json(std::ostream& os, const std::vector<fault::CampaignResult>& results) {
    os << "{\n  \"campaigns\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        os << "    {\"arch\": \"" << cluster::arch_name(r.arch) << "\", \"ecc\": "
           << (r.cfg.ecc ? "true" : "false") << ", \"seed\": " << r.cfg.seed
           << ", \"injections\": " << r.runs.size() << ", \"clean_cycles\": " << r.clean_cycles
           << ", \"energy_per_op\": " << r.energy_per_op << ",\n     \"outcomes\": {";
        for (unsigned o = 0; o < fault::kOutcomeCount; ++o) {
            os << (o ? ", " : "") << '"' << fault::outcome_name(static_cast<fault::Outcome>(o))
               << "\": " << r.counts[o];
        }
        os << "}, \"coverage\": " << r.coverage() << "}" << (i + 1 < results.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    fault::CampaignConfig cfg;
    cfg.injections = 400;
    cfg.seed = 42;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t v = 0;
        if (arg == "--injections" && i + 1 < argc && parse_u64(argv[++i], v) && v >= 1) {
            cfg.injections = static_cast<unsigned>(v);
        } else if (arg == "--seed" && i + 1 < argc && parse_u64(argv[++i], v)) {
            cfg.seed = v;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            if (!cluster::parse_engine(argv[++i], cfg.engine)) {
                std::cerr << "unknown engine '" << argv[i]
                          << "' (expected reference, fast or trace)\n";
                return 2;
            }
        } else {
            std::cerr << "usage: ext_fault_campaign [--injections N] [--seed S] [--json FILE]\n"
                         "                          [--engine reference|fast|trace]\n";
            return 2;
        }
    }

    exp::print_experiment_header("Extension: SEU fault-injection campaigns",
                                 "beyond the paper (dependability axis, DESIGN.md §9)");
    std::cout << cfg.injections << " seeded strikes per architecture, replayed with SEC-DED "
                 "off/on (seed "
              << cfg.seed << ").\n\n";

    const app::EcgBenchmark bench{};
    sweep::SweepRunner pool;
    std::vector<fault::CampaignResult> results;

    Table t({"arch", "ECC", "masked", "corrected", "trapped", "hang", "SDC", "coverage",
             "energy/op", "ECC overhead"});
    for (const auto arch : kArchs) {
        double epo_off = 0;
        for (const bool ecc : {false, true}) {
            fault::CampaignConfig c = cfg;
            c.ecc = ecc;
            const auto r = fault::run_campaign(bench, arch, c, pool);
            if (!ecc) epo_off = r.energy_per_op;
            t.add_row({cluster::arch_name(arch), ecc ? "on" : "off",
                       std::to_string(r.count(fault::Outcome::Masked)),
                       std::to_string(r.count(fault::Outcome::Corrected)),
                       std::to_string(r.count(fault::Outcome::Trapped)),
                       std::to_string(r.count(fault::Outcome::Hang)),
                       std::to_string(r.count(fault::Outcome::Sdc)),
                       format_percent(r.coverage(), 1), format_si(r.energy_per_op, "J"),
                       ecc ? format_percent(r.energy_per_op / epo_off - 1.0, 1) : "-"});
            results.push_back(r);
        }
        if (arch != cluster::ArchKind::UlpmcBank) t.add_separator();
    }
    t.print(std::cout);
    std::cout << "\nCoverage = 1 - SDC/injections. The ECC overhead is the clean-run\n"
                 "energy/op delta charged by the calibrated model (access-energy factors\n"
                 "22/16 for DM, 30/24 for IM, plus 45 pJ per correction scrub).\n\n";

    // Streaming monitor under fire: checkpoint/rollback + lead-drop.
    const unsigned stream_injections = std::max(1u, cfg.injections / 4);
    std::cout << "-- Resilient streaming monitor (" << stream_injections
              << " strikes, 4 blocks, ulpmc-bank) --\n";
    const app::StreamingBenchmark stream({.use_barrier = true}, 4);
    fault::CampaignConfig sc = cfg;
    sc.injections = stream_injections;
    Table st({"ECC", "masked", "corrected", "rolled-back", "lead-dropped", "SDC", "coverage"});
    for (const bool ecc : {false, true}) {
        fault::CampaignConfig c = sc;
        c.ecc = ecc;
        const auto r = fault::run_streaming_campaign(stream, cluster::ArchKind::UlpmcBank, c, pool);
        st.add_row({ecc ? "on" : "off", std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::RolledBack)),
                    std::to_string(r.count(fault::Outcome::LeadDropped)),
                    std::to_string(r.count(fault::Outcome::Sdc)),
                    format_percent(r.coverage(), 1)});
        results.push_back(r);
    }
    st.print(std::cout);
    std::cout << "\nEvery block is a checkpoint: a corrupted lead rolls the block back;\n"
                 "a persistently-broken lead is dropped while the others keep streaming.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        write_json(os, results);
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
