// Extension: seeded fault-injection campaigns (DESIGN.md §9). Four
// experiments share one deterministic strike set per seed:
//
//   1. per-architecture SEU campaigns, SEC-DED off/on — the baseline
//      dependability/energy trade;
//   2. the protection-tier ladder under multi-bit bursts (adjacent-bit
//      memory MBUs + multi-register upsets) on ulpmc-bank: none -> ECC ->
//      ECC+parity -> ECC+TMR -> ECC+parity+checkpoint. Bursts defeat
//      SEC-DED by construction, so this is where the register-file
//      protection and the generalized checkpoint service earn their keep;
//   3. the resilient streaming monitor under SEUs (block rollback +
//      lead-drop, as in PR 2);
//   4. the streaming monitor under MBU bursts across recovery tiers —
//      the acceptance row: ECC + parity + generalized checkpointing
//      reports ZERO silent corruptions.
//
// Campaigns shard across machines: --shard K/N runs the global injection
// indices congruent to K mod N; tools/merge_campaign.py folds the shard
// JSONs back into the byte-identical unsharded artifact.
//
// Usage: ext_fault_campaign [--injections N] [--seed S] [--json FILE]
//                           [--engine reference|fast|trace|batched]
//                           [--batch B] [--shard K/N]
//
// --engine batched runs every campaign through the lockstep-sharing tier
// (DESIGN.md §11): outcome/energy tables stay byte-identical to trace,
// only wall-clock changes, and the JSON artifact gains per-campaign
// batch_lockstep_cycles / batch_lane_peels / batch_peel_reasons fields.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/stats.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "fault/campaign.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

constexpr cluster::ArchKind kArchs[] = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                        cluster::ArchKind::UlpmcBank};

/// One row of the protection ladder (applied on top of a base config).
struct Tier {
    const char* name;
    bool ecc;
    core::RegProtection prot;
    bool checkpoint;
    bool im_scrub = false;    ///< idle-cycle IM scrub walker
    bool self_check = false;  ///< self-checking crossbar arbiters
    /// Distinguishes campaigns that would otherwise share the identity key
    /// (tools/check_coverage.py) — legacy rows stay untagged so the
    /// committed baseline keeps matching.
    const char* policy = nullptr;
};

constexpr Tier kOneShotTiers[] = {
    {"none", false, core::RegProtection::None, false},
    {"ecc", true, core::RegProtection::None, false},
    {"ecc+scrub", true, core::RegProtection::None, false, true, false, "scrub"},
    {"ecc+parity", true, core::RegProtection::Parity, false},
    {"ecc+tmr", true, core::RegProtection::Tmr, false},
    {"ecc+parity+ckpt", true, core::RegProtection::Parity, true},
};

/// Arbiter sequential-state upsets (kArbiterFaultKinds): the self-checking
/// arbiter converts both failure modes into counted repairs.
constexpr Tier kArbiterTiers[] = {
    {"ecc", true, core::RegProtection::None, false, false, false, "arb"},
    {"ecc+selfcheck", true, core::RegProtection::None, false, false, true, "arb+selfcheck"},
};

constexpr Tier kStreamTiers[] = {
    {"ecc", true, core::RegProtection::None, false},
    {"ecc+parity", true, core::RegProtection::Parity, false},
    {"ecc+parity+ckpt", true, core::RegProtection::Parity, true},
    {"ecc+tmr+ckpt", true, core::RegProtection::Tmr, true},
};

/// Adjacent-bit burst length / registers per spatial upset used by the
/// MBU experiments (2 & 4). 3 adjacent flips have odd parity, so the
/// SEC-DED decoder mis-corrects them silently.
constexpr unsigned kBurstLen = 3;
constexpr unsigned kRegBurst = 2;

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

bool parse_shard(const std::string& s, unsigned& index, unsigned& count) {
    const auto slash = s.find('/');
    if (slash == std::string::npos) return false;
    std::uint64_t k = 0, n = 0;
    if (!parse_u64(s.substr(0, slash).c_str(), k)) return false;
    if (!parse_u64(s.substr(slash + 1).c_str(), n)) return false;
    if (n < 1 || k >= n) return false;
    index = static_cast<unsigned>(k);
    count = static_cast<unsigned>(n);
    return true;
}

/// A campaign result tagged with the workload that produced it.
struct TaggedResult {
    const char* workload; ///< "oneshot" | "streaming"
    fault::CampaignResult r;
    const char* policy = nullptr; ///< extra identity tag (omitted when null)
};

void write_json(std::ostream& os, const std::vector<TaggedResult>& results, unsigned shard_index,
                unsigned shard_count) {
    os << "{\n";
    if (shard_count > 1) os << "  \"shard\": \"" << shard_index << "/" << shard_count << "\",\n";
    os << "  \"campaigns\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i].r;
        os << "    {\"workload\": \"" << results[i].workload << "\", ";
        if (results[i].policy) os << "\"policy\": \"" << results[i].policy << "\", ";
        os << "\"arch\": \"" << cluster::arch_name(r.arch)
           << "\", \"ecc\": " << (r.cfg.ecc ? "true" : "false") << ", \"protection\": \""
           << core::reg_protection_name(r.cfg.reg_protection)
           << "\", \"checkpoint\": " << (r.cfg.checkpoint ? "true" : "false")
           << ", \"burst_len\": " << r.cfg.burst_len << ", \"reg_burst\": " << r.cfg.reg_burst
           << ", \"seed\": " << r.cfg.seed << ", \"injections\": " << r.runs.size()
           << ", \"clean_cycles\": " << r.clean_cycles << ", \"energy_per_op\": " << r.energy_per_op
           << ",\n     \"outcomes\": {";
        for (unsigned o = 0; o < fault::kOutcomeCount; ++o) {
            os << (o ? ", " : "") << '"' << fault::outcome_name(static_cast<fault::Outcome>(o))
               << "\": " << r.counts[o];
        }
        os << "}, \"coverage\": " << r.coverage();
        // Batched-engine observability only: the trace/reference artifact
        // stays byte-for-byte what the committed baselines expect.
        if (r.cfg.engine == cluster::SimEngine::Batched) {
            os << ",\n     \"batch_lockstep_cycles\": " << r.batch_lockstep_cycles
               << ", \"batch_lane_peels\": " << r.batch_lane_peels
               << ", \"batch_peel_reasons\": {";
            for (unsigned p = 0; p < cluster::kPeelReasonCount; ++p) {
                os << (p ? ", " : "") << '"'
                   << cluster::peel_reason_name(static_cast<cluster::PeelReason>(p))
                   << "\": " << r.batch_peel_reasons[p];
            }
            os << "}";
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    fault::CampaignConfig cfg;
    cfg.injections = 400;
    cfg.seed = 42;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t v = 0;
        if (arg == "--injections" && i + 1 < argc && parse_u64(argv[++i], v) && v >= 1) {
            cfg.injections = static_cast<unsigned>(v);
        } else if (arg == "--seed" && i + 1 < argc && parse_u64(argv[++i], v)) {
            cfg.seed = v;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            if (!cluster::parse_engine(argv[++i], cfg.engine)) {
                std::cerr << "unknown engine '" << argv[i]
                          << "' (expected reference, fast, trace or batched)\n";
                return 2;
            }
        } else if (arg == "--batch" && i + 1 < argc && parse_u64(argv[++i], v) && v >= 1 &&
                   v <= 4096) {
            cfg.batch = static_cast<unsigned>(v);
        } else if (arg == "--shard" && i + 1 < argc &&
                   parse_shard(argv[++i], cfg.shard_index, cfg.shard_count)) {
            // parsed in place
        } else {
            std::cerr << "usage: ext_fault_campaign [--injections N] [--seed S] [--json FILE]\n"
                         "                          [--engine reference|fast|trace|batched]\n"
                         "                          [--batch B] [--shard K/N]\n";
            return 2;
        }
    }

    exp::print_experiment_header("Extension: fault-injection campaigns",
                                 "beyond the paper (dependability axis, DESIGN.md §9)");
    std::cout << cfg.injections << " seeded strikes per campaign (seed " << cfg.seed << ")";
    if (cfg.shard_count > 1) {
        std::cout << ", shard " << cfg.shard_index << "/" << cfg.shard_count
                  << " (tables show this shard's strikes only)";
    }
    std::cout << ".\n\n";

    const app::EcgBenchmark bench{};
    sweep::SweepRunner pool;
    std::vector<TaggedResult> results;

    // -- 1: per-architecture SEU campaigns, SEC-DED off/on ------------------
    Table t({"arch", "ECC", "masked", "latent", "corrected", "trapped", "hang", "SDC", "coverage",
             "energy/op", "ECC overhead"});
    for (const auto arch : kArchs) {
        double epo_off = 0;
        for (const bool ecc : {false, true}) {
            fault::CampaignConfig c = cfg;
            c.ecc = ecc;
            const auto r = fault::run_campaign(bench, arch, c, pool);
            if (!ecc) epo_off = r.energy_per_op;
            t.add_row({cluster::arch_name(arch), ecc ? "on" : "off",
                       std::to_string(r.count(fault::Outcome::Masked)),
                       std::to_string(r.count(fault::Outcome::Latent)),
                       std::to_string(r.count(fault::Outcome::Corrected)),
                       std::to_string(r.count(fault::Outcome::Trapped)),
                       std::to_string(r.count(fault::Outcome::Hang)),
                       std::to_string(r.count(fault::Outcome::Sdc)),
                       format_percent(r.coverage(), 1), format_si(r.energy_per_op, "J"),
                       ecc ? format_percent(r.energy_per_op / epo_off - 1.0, 1) : "-"});
            results.push_back({"oneshot", r});
        }
        if (arch != cluster::ArchKind::UlpmcBank) t.add_separator();
    }
    t.print(std::cout);
    std::cout << "\nCoverage = 1 - SDC/injections. Latent = a struck register was never\n"
                 "read: the output is clean but corrupted state is still live.\n\n";

    // -- 2: multi-bit bursts vs the protection ladder (ulpmc-bank) ----------
    std::cout << "-- Multi-bit bursts (" << kBurstLen << " adjacent bits, " << kRegBurst
              << "-register upsets) vs protection tiers, ulpmc-bank --\n";
    Table bt({"tier", "masked", "latent", "corrected", "rolled-back", "trapped", "hang", "SDC",
              "coverage", "energy/op"});
    for (const auto& tier : kOneShotTiers) {
        fault::CampaignConfig c = cfg;
        c.ecc = tier.ecc;
        c.reg_protection = tier.prot;
        c.checkpoint = tier.checkpoint;
        c.im_scrub = tier.im_scrub;
        c.xbar_self_check = tier.self_check;
        c.burst_len = kBurstLen;
        c.reg_burst = kRegBurst;
        const auto r = fault::run_campaign(bench, cluster::ArchKind::UlpmcBank, c, pool);
        bt.add_row({tier.name, std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Latent)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::RolledBack)),
                    std::to_string(r.count(fault::Outcome::Trapped)),
                    std::to_string(r.count(fault::Outcome::Hang)),
                    std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                    format_si(r.energy_per_op, "J")});
        results.push_back({"oneshot", r, tier.policy});
    }
    bt.print(std::cout);
    std::cout << "\nAn odd-length adjacent burst aliases to a valid SEC-DED syndrome, so\n"
                 "the decoder mis-corrects it silently: ECC alone loses coverage here.\n"
                 "Parity catches the register strikes it covers; the checkpoint tier\n"
                 "re-executes from the last snapshot on any unrecoverable trap.\n\n";

    // -- 3: resilient streaming monitor under SEUs --------------------------
    const unsigned stream_injections = std::max(1u, cfg.injections / 4);
    std::cout << "-- Resilient streaming monitor (" << stream_injections
              << " strikes, 4 blocks, ulpmc-bank) --\n";
    const app::StreamingBenchmark stream({.use_barrier = true}, 4);
    fault::CampaignConfig sc = cfg;
    sc.injections = stream_injections;
    Table st({"ECC", "masked", "latent", "corrected", "rolled-back", "lead-dropped", "SDC",
              "coverage"});
    for (const bool ecc : {false, true}) {
        fault::CampaignConfig c = sc;
        c.ecc = ecc;
        const auto r = fault::run_streaming_campaign(stream, cluster::ArchKind::UlpmcBank, c, pool);
        st.add_row({ecc ? "on" : "off", std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Latent)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::RolledBack)),
                    std::to_string(r.count(fault::Outcome::LeadDropped)),
                    std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1)});
        results.push_back({"streaming", r});
    }
    st.print(std::cout);
    std::cout << "\nEvery block is a checkpoint: a corrupted lead rolls the block back;\n"
                 "a persistently-broken lead is dropped while the others keep streaming.\n\n";

    // -- 4: streaming monitor under MBU bursts, recovery tiers --------------
    std::cout << "-- Streaming monitor under bursts (" << stream_injections
              << " strikes, recovery tiers, ulpmc-bank) --\n";
    Table mt({"tier", "masked", "latent", "corrected", "rolled-back", "lead-dropped", "SDC",
              "coverage", "re-exec", "energy/op"});
    for (const auto& tier : kStreamTiers) {
        fault::CampaignConfig c = sc;
        c.ecc = tier.ecc;
        c.reg_protection = tier.prot;
        c.checkpoint = tier.checkpoint;
        c.burst_len = kBurstLen;
        c.reg_burst = kRegBurst;
        const auto r = fault::run_streaming_campaign(stream, cluster::ArchKind::UlpmcBank, c, pool);
        const double reexec =
            r.runs.empty() ? 0.0
                           : static_cast<double>(r.reexec_cycles) /
                                 (static_cast<double>(r.clean_cycles) *
                                  static_cast<double>(r.runs.size()));
        mt.add_row({tier.name, std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Latent)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::RolledBack)),
                    std::to_string(r.count(fault::Outcome::LeadDropped)),
                    std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                    format_percent(reexec, 2), format_si(r.energy_per_op, "J")});
        results.push_back({"streaming", r});
    }
    mt.print(std::cout);
    std::cout << "\nThe checkpointed tiers run ONE continuous cluster with full-state\n"
                 "snapshots at block boundaries (cross-block state survives rollback).\n"
                 "Re-exec is the rollback cost: discarded cycles / fault-free cycles.\n"
                 "With ECC + parity + checkpointing every burst is detected and either\n"
                 "replayed or fail-stopped: the SDC column must read zero.\n\n";

    // -- 5: arbiter sequential-state upsets vs the self-checking arbiter ----
    std::cout << "-- Arbiter-state upsets (stuck RR pointer / grant-register flip, "
              << stream_injections << " strikes, ulpmc-bank) --\n";
    Table at({"tier", "masked", "corrected", "trapped", "hang", "SDC", "coverage", "energy/op"});
    for (const auto& tier : kArbiterTiers) {
        fault::CampaignConfig c = cfg;
        c.injections = stream_injections;
        c.ecc = tier.ecc;
        c.xbar_self_check = tier.self_check;
        c.kinds = fault::kArbiterFaultKinds;
        const auto r = fault::run_campaign(bench, cluster::ArchKind::UlpmcBank, c, pool);
        at.add_row({tier.name, std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::Trapped)),
                    std::to_string(r.count(fault::Outcome::Hang)),
                    std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                    format_si(r.energy_per_op, "J")});
        results.push_back({"oneshot", r, tier.policy});
    }
    at.print(std::cout);
    std::cout << "\nA flipped grant register double-grants one bank: the hijacked master\n"
                 "latches the winner's word (a silent wrong-data channel ECC cannot\n"
                 "see); a stuck round-robin pointer starves whoever it deprioritizes\n"
                 "until the watchdog fires. The self-checking arbiter re-evaluates the\n"
                 "grant matrix each cycle, suppresses the flip and resyncs the pointer\n"
                 "(counted repairs), restoring coverage at a per-cycle checker cost.\n\n";

    // -- 6: durable delta checkpoint storage (DESIGN.md §9.6) ---------------
    // A longer stream than experiments 3/4: the byte economics of delta
    // records only show once one keyframe amortizes over many boundary
    // deltas (4 blocks would be keyframe-dominated by construction).
    constexpr unsigned kStoreBlocks = 12;
    constexpr unsigned kStoreKeyInterval = 16;
    std::cout << "-- Durable checkpoint storage (" << stream_injections << " strikes, "
              << kStoreBlocks << " blocks, delta records + CRC32, ulpmc-bank) --\n";
    const app::StreamingBenchmark dstream({.use_barrier = true}, kStoreBlocks);
    struct StoreArm {
        const char* name;
        const char* policy;
        cluster::CkptStorageConfig storage;
        bool strikes;
    };
    const StoreArm kStoreArms[] = {
        {"full+crc", "store-full", {.delta = false, .keyframe_interval = 1}, false},
        {"delta+crc", "store-delta", {.keyframe_interval = kStoreKeyInterval}, false},
        {"delta+crc, record strikes", "store-strike-crc",
         {.keyframe_interval = kStoreKeyInterval}, true},
        {"delta NO-crc, record strikes", "store-strike-nocrc",
         {.keyframe_interval = kStoreKeyInterval, .crc_verify = false}, true},
    };
    Table kt({"store", "masked", "corrected", "rolled-back", "lead-dropped", "trapped", "SDC",
              "coverage", "stored", "full-equiv", "crc-fail", "fallbacks"});
    std::vector<fault::CampaignResult> store_runs;
    for (const auto& arm : kStoreArms) {
        fault::CampaignConfig c = sc;
        c.ecc = true;
        c.reg_protection = core::RegProtection::Parity;
        c.checkpoint = true;
        const auto r = fault::run_storage_campaign(dstream, cluster::ArchKind::UlpmcBank, c,
                                                   {.storage = arm.storage,
                                                    .storage_strikes = arm.strikes},
                                                   pool);
        kt.add_row({arm.name, std::to_string(r.count(fault::Outcome::Masked)),
                    std::to_string(r.count(fault::Outcome::Corrected)),
                    std::to_string(r.count(fault::Outcome::RolledBack)),
                    std::to_string(r.count(fault::Outcome::LeadDropped)),
                    std::to_string(r.count(fault::Outcome::Trapped)),
                    std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                    format_si(static_cast<double>(r.ckpt_stored_bytes), "B"),
                    format_si(static_cast<double>(r.ckpt_full_bytes), "B"),
                    std::to_string(r.ckpt_crc_failures), std::to_string(r.ckpt_fallbacks)});
        store_runs.push_back(r);
        results.push_back({"streaming", store_runs.back(), arm.policy});
    }
    kt.print(std::cout);
    // Delta records must be an ENCODING, never a behavior: the full- and
    // delta-record arms see identical strikes, so campaign outcomes must
    // match injection for injection — only the stored bytes may differ.
    const auto& full_arm = store_runs[0];
    const auto& delta_arm = store_runs[1];
    for (std::size_t i = 0; i < full_arm.runs.size(); ++i) {
        if (full_arm.runs[i].fault.describe() != delta_arm.runs[i].fault.describe() ||
            full_arm.runs[i].outcome != delta_arm.runs[i].outcome ||
            full_arm.runs[i].cycles != delta_arm.runs[i].cycles) {
            std::cerr << "FAIL: delta-record arm diverged from full-record arm at injection "
                      << i << "\n";
            return 1;
        }
    }
    const double delta_reduction =
        delta_arm.ckpt_stored_bytes > 0
            ? static_cast<double>(delta_arm.ckpt_full_bytes) /
                  static_cast<double>(delta_arm.ckpt_stored_bytes)
            : 0.0;
    if (delta_reduction < 5.0) {
        std::cerr << "FAIL: delta records reduced checkpoint bytes only "
                  << format_fixed(delta_reduction, 2) << "x (acceptance floor: 5x)\n";
        return 1;
    }
    std::cout << "\nDelta records persist " << format_si(
                     static_cast<double>(delta_arm.ckpt_stored_bytes), "B")
              << " where full keyframes need "
              << format_si(static_cast<double>(delta_arm.ckpt_full_bytes), "B") << ": a "
              << format_fixed(delta_reduction, 1)
              << "x byte reduction at byte-identical campaign outcomes.\n"
                 "Record strikes with CRC verification on are rejected before restore\n"
                 "and absorbed by the keyframe fallback chain (cheap re-execution, zero\n"
                 "SDC). With verification off the corruption flows into the restored\n"
                 "state; the per-block golden check downstream still refuses to commit\n"
                 "it (retries, lead drops, fail-stops — never silence), but recovery is\n"
                 "no longer one cheap fallback.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        write_json(os, results, cfg.shard_index, cfg.shard_count);
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
