// Reproduces Fig. 3: the power distribution of the mc-ref architecture
// while executing the ECG benchmark — the observation that motivates the
// whole paper (54% of the power burns in the instruction memory because
// every core reads the same instructions from its own dedicated bank).
#include <iostream>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Power distribution in the mc-ref architecture", "Figure 3");

    const app::EcgBenchmark bench{};
    const auto dp = exp::characterize(cluster::ArchKind::McRef, bench);

    const power::PowerModel model(cluster::ArchKind::McRef);
    // Any dynamic operating point gives the same split; use Table II's.
    const auto p = model.dynamic_power(dp.rates, 8e6, power::cal::kVnom);
    const double total = p.total();

    struct Row {
        const char* name;
        double ours;
        double paper;
    };
    const Row rows[] = {
        {"Instruction memory", p.im / total, 54.0}, {"Cores", p.cores / total, 27.0},
        {"Data memory", p.dm / total, 11.0},        {"Data crossbar", p.dxbar / total, 3.0},
        {"Clock", p.clock / total, 5.0},
    };

    Table t({"component", "share (measured)", "share (paper)"});
    for (const auto& r : rows)
        t.add_row({r.name, format_percent(r.ours), format_fixed(r.paper, 0) + "%"});
    t.print(std::cout);

    std::cout << "\nThe IM dominates because all " << kNumCores
              << " dedicated banks are read every cycle with identical contents --\n"
                 "the waste the proposed I-Xbar broadcast eliminates (Sections III-C, IV-C2).\n";
    return 0;
}
