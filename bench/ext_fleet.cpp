// Extension: fleet throughput — amortized cohort/calibration sharing vs
// a naive per-device loop (DESIGN.md §13).
//
// The claim under test: running N heterogeneous devices through the
// fleet engine costs a small fixed setup (one benchmark per cohort, one
// calibration per distinct (cohort, arch, policy, level)) plus a tiny
// marginal cost per device, where a naive loop of single-device lifetime
// runs (what `for d in ...; do ulpmc-life ...; done` does) pays the full
// benchmark + calibration bill for EVERY device. The bench times both
// arms on the same timeline and reports the speedup
//
//     speedup = (naive_per_device x devices) / fleet_wall
//
// The naive arm actually runs a representative spread of the same device
// specs (same DeviceConfig derivation as the fleet), so both arms
// simulate identical physics; it is sampled (default 12 devices) because
// running all N naively is precisely the cost this layer exists to avoid.
//
// The JSON artifact has two parts: the "fleet"/"aggregate" subtrees are
// deterministic (pure function of timeline + options; byte-compared
// against the committed bench/BENCH_fleet.json by tools/check_fleet.py)
// and the "throughput" subtree is host-dependent (wall times, speedup —
// gated only as speedup >= 10, never byte-compared).
//
// Usage: ext_fleet [--seed S] [--devices N] [--cohorts C] [--naive M]
//                  [--threads T] [--engine E] [--timeline FILE]
//                  [--json FILE]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "scenario/engine.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

/// Built-in script: a copy of bench/timelines/fleet_smoke.txt. Low-flux
/// radiation (most blocks credit from the shared calibration), a BLE
/// drought and a recovery phase — the regime where fixed-cost sharing
/// dominates and the ladder's backoff/degradation machinery all engage.
constexpr const char* kBenchTimeline = R"(# fleet-smoke (built into ext_fleet)
block_period_s 2.0
battery_j 0.012

phase clean     120 harvest_uw=50
phase radiation 120 lambda=2e-8 ble_loss=0.05 harvest_uw=50
phase drought   120 ble=down harvest_uw=150
phase recovery  120 ble_loss=0.01 harvest_uw=400
)";

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

} // namespace

int main(int argc, char** argv) {
    fleet::FleetOptions opt;
    opt.seed = 1;
    opt.devices = 512;
    opt.cohorts = 2;
    std::uint64_t naive_devices = 12;
    std::string json_path;
    std::string timeline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--devices") {
            opt.devices = std::stoull(value());
        } else if (arg == "--cohorts") {
            opt.cohorts = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--naive") {
            naive_devices = std::stoull(value());
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--engine") {
            if (!cluster::parse_engine(value(), opt.engine)) {
                std::cerr << "--engine: unknown engine\n";
                return 2;
            }
        } else if (arg == "--timeline") {
            timeline_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::cerr << arg << ": unknown option\n";
            return 2;
        }
    }
    if (opt.devices == 0) {
        std::cerr << "--devices must be >= 1\n";
        return 2;
    }
    naive_devices = std::min(naive_devices, opt.devices);
    if (naive_devices == 0) naive_devices = 1;

    scenario::Timeline tl;
    std::string tl_name = "fleet-smoke";
    try {
        if (timeline_path.empty()) {
            std::istringstream in(kBenchTimeline);
            tl = scenario::parse_timeline(in);
        } else {
            tl = scenario::load_timeline(timeline_path);
            tl_name = timeline_path;
            if (const auto slash = tl_name.find_last_of('/'); slash != std::string::npos)
                tl_name = tl_name.substr(slash + 1);
        }
    } catch (const scenario::TimelineError& e) {
        std::cerr << "timeline: " << e.what() << "\n";
        return 2;
    }

    // Fleet arm: shared benchmarks, shared calibration cache, pooled
    // clusters, work-stealing schedule.
    fleet::FleetEngine eng(tl, opt);
    const fleet::FleetResult res = eng.run();
    fleet::print_summary(std::cout, opt, res);

    // Naive arm: an evenly-spread sample of the SAME device specs, each
    // paying its own benchmark build and calibrations — the per-device
    // cost of looping ulpmc-life.
    const auto t0 = std::chrono::steady_clock::now();
    sweep::SweepRunner naive_pool(1);
    for (std::uint64_t i = 0; i < naive_devices; ++i) {
        const std::uint64_t gdi = i * opt.devices / naive_devices;
        const fleet::DeviceSpec spec = fleet::device_spec(opt, gdi);
        scenario::DeviceConfig dc;
        dc.arch = spec.arch;
        dc.engine = opt.engine;
        dc.seed = spec.seed;
        dc.policy = spec.policy;
        dc.max_days = opt.days;
        dc.thresholds = opt.thresholds;
        dc.battery.initial_fraction = spec.initial_charge;
        scenario::LifetimeEngine one(tl, dc);
        (void)one.run(naive_pool);
    }
    const double naive_wall = seconds_since(t0);
    const double naive_per_device = naive_wall / static_cast<double>(naive_devices);
    const double naive_projected = naive_per_device * static_cast<double>(opt.devices);
    const double fleet_wall = res.wall_s > 0 ? res.wall_s : 1e-9;
    const double speedup = naive_projected / fleet_wall;

    std::cout << "naive loop: " << naive_devices << " devices in " << naive_wall << " s ("
              << naive_per_device << " s/device, projected " << naive_projected << " s for "
              << opt.devices << ")\n";
    std::cout << "speedup: " << speedup << "x over the naive per-device loop\n";

    if (!json_path.empty()) {
        std::ostringstream art;
        fleet::write_json(art, tl_name, opt, tl.block_period_s, res.aggregate,
                          res.records.size());
        std::string body = art.str();
        // Splice the host-dependent throughput subtree in before the
        // artifact's closing brace: body ends "  }\n}\n".
        body.resize(body.size() - 2); // drop the final "}\n"
        body.pop_back();              // drop the newline after "  }"
        body += ",\n";
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << json_path << ": cannot open for writing\n";
            return 1;
        }
        out << body;
        out << "  \"throughput\": {\n";
        out << "    \"device_hours\": " << res.device_hours << ",\n";
        out << "    \"fleet_wall_s\": " << res.wall_s << ",\n";
        out << "    \"device_hours_per_s\": " << res.device_hours / fleet_wall << ",\n";
        out << "    \"workers\": " << res.sched.workers << ",\n";
        out << "    \"steals\": " << res.sched.steals << ",\n";
        out << "    \"calibrations\": " << res.calibrations << ",\n";
        out << "    \"naive_devices\": " << naive_devices << ",\n";
        out << "    \"naive_wall_s\": " << naive_wall << ",\n";
        out << "    \"naive_per_device_s\": " << naive_per_device << ",\n";
        out << "    \"naive_projected_s\": " << naive_projected << ",\n";
        out << "    \"speedup\": " << speedup << "\n";
        out << "  }\n";
        out << "}\n";
    }
    return 0;
}
