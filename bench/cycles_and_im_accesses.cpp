// Reproduces §IV-C2's cycle-count and IM-access-count comparison:
//
//   * benchmark execution cycles for mc-ref / ulpmc-int / ulpmc-bank with
//     the Huffman LUTs in the shared DM section (paper: 90.20k / 90.40k /
//     101.8k) and in the private section (paper: 90.20k / ~90.20k /
//     94.00k — the configuration every other experiment uses);
//   * total IM bank accesses: 8 per-core fetch streams in mc-ref (paper
//     720,800) vs a mostly-merged broadcast stream in the proposed
//     designs (paper 90,220), plus the broadcast-only intermediate
//     configuration without the DM reorganization (paper 428,740).
//
// Absolute counts differ from the paper's because our hand-written kernel
// is smaller than theirs (~67k instructions vs ~90k); the architectural
// ratios are the reproduction target.
#include <iostream>

#include "exp/experiments.hpp"

using namespace ulpmc;

namespace {

void run_variant(const char* name, bool luts_shared) {
    app::BenchmarkOptions opt;
    opt.luts_shared = luts_shared;
    const app::EcgBenchmark bench(opt);

    Table t({"arch", "cycles", "vs mc-ref", "IM bank accesses", "IM accesses / op",
             "stall cycles (all cores)"});
    double ref_cycles = 0;
    for (const auto& dp : exp::characterize_all(bench)) {
        const auto& s = dp.outcome.stats;
        if (dp.arch == cluster::ArchKind::McRef) ref_cycles = static_cast<double>(s.cycles);
        std::uint64_t stalls = 0;
        for (const auto& c : s.core) stalls += c.stall_cycles;
        t.add_row({cluster::arch_name(dp.arch), format_count(s.cycles),
                   format_fixed(static_cast<double>(s.cycles) / ref_cycles, 4),
                   format_count(s.im_bank_accesses),
                   format_fixed(dp.rates.im_bank_accesses, 4), format_count(stalls)});
    }
    std::cout << "-- Huffman LUTs " << name << " --\n";
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int main() {
    exp::print_experiment_header("Benchmark cycles and instruction-memory accesses",
                                 "Section IV-C2 (text)");

    std::cout << "Paper, shared LUTs:  cycles 90.20k / 90.40k / 101.8k;  private LUTs: "
                 "90.20k / ~90.20k / 94.00k\n"
              << "Paper, IM accesses:  mc-ref 720,800 (8 dedicated streams); proposed "
                 "90,220 (broadcast + DM reorg)\n\n";

    run_variant("PRIVATE (paper's chosen configuration)", /*luts_shared=*/false);
    run_variant("SHARED (conflict-prone ablation)", /*luts_shared=*/true);
    return 0;
}
