// Extension: graceful degradation vs a no-resilience baseline over a
// scripted device lifetime (DESIGN.md §12).
//
// The lifetime engine walks one stressed day of a wearable monitor — a
// ward shift on a weak harvester, a high-flux flight segment, a BLE
// drought, a clinical arrhythmia episode and an evening recharge — twice:
// once as the LADDER device (verified blocks, battery-driven degradation,
// lambda-aware derating) and once as the BASELINE device (no protection,
// no verification, no degradation; watchdog only). The claim under test:
// the ladder delivers MORE of the signal (higher delivered-sample
// fraction), lives LONGER on the same battery (later or no brownout) and
// ships ZERO silently-corrupted blocks, where the baseline pays for its
// full-power simplicity with early brownout and SDC under radiation.
//
// The committed artifact bench/BENCH_lifetime.json is gated in CI by
// tools/check_lifetime.py: the ladder's delivered fraction may not drop
// and its SDC count may not rise, and the ladder-beats-baseline
// invariants must hold in every fresh artifact.
//
// Usage: ext_lifetime [--seed S] [--engine E] [--threads N]
//                     [--timeline FILE] [--json FILE]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

/// The default script: one stressed day, sized so the full-power draw
/// outruns the harvester but the degraded draw does not — the regime
/// where a degradation ladder can matter at all.
constexpr const char* kBenchTimeline = R"(# bench-day (built into ext_lifetime)
block_period_s 2.0
battery_j 0.5

phase flight    7200  lambda=4e-7 ble_loss=0.10 harvest_uw=10
phase ward      7200  ble_loss=0.02 harvest_uw=40
phase drought   3600  ble=down harvest_uw=40
phase episode   1800  arrhythmia=1 ble_loss=0.02 harvest_uw=40
phase evening   7200  ble_loss=0.02 harvest_uw=40
phase recharge  3600  ble_loss=0.01 harvest_uw=300
)";

} // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 42;
    std::uint64_t threads = 0;
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    std::string json_path;
    std::string timeline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            seed = std::stoull(value());
        } else if (arg == "--threads") {
            threads = std::stoull(value());
        } else if (arg == "--engine") {
            if (!cluster::parse_engine(value(), engine)) {
                std::cerr << "--engine: unknown engine\n";
                return 2;
            }
        } else if (arg == "--timeline") {
            timeline_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::cerr << arg << ": unknown option\n";
            return 2;
        }
    }

    scenario::Timeline tl;
    std::string tl_name = "bench-day";
    try {
        if (timeline_path.empty()) {
            std::istringstream in(kBenchTimeline);
            tl = scenario::parse_timeline(in);
        } else {
            tl = scenario::load_timeline(timeline_path);
            tl_name = timeline_path;
            if (const auto slash = tl_name.find_last_of('/'); slash != std::string::npos)
                tl_name = tl_name.substr(slash + 1);
        }
    } catch (const scenario::TimelineError& e) {
        std::cerr << "timeline: " << e.what() << "\n";
        return 2;
    }

    sweep::SweepRunner pool(static_cast<unsigned>(threads));
    std::vector<scenario::LifetimeReport> runs;
    for (const auto policy : {scenario::Policy::Ladder, scenario::Policy::Baseline}) {
        scenario::DeviceConfig dc;
        dc.seed = seed;
        dc.engine = engine;
        dc.policy = policy;
        scenario::LifetimeEngine eng(tl, dc);
        runs.push_back(eng.run(pool));
        scenario::print_summary(std::cout, runs.back());
        std::cout << "\n";
    }

    const auto& ladder = runs[0];
    const auto& baseline = runs[1];
    std::cout << "ladder vs baseline: delivered " << 100.0 * ladder.delivered_fraction << "% vs "
              << 100.0 * baseline.delivered_fraction << "%, SDC " << ladder.sdc_blocks << " vs "
              << baseline.sdc_blocks << ", first brownout "
              << (ladder.first_brownout_s < 0 ? std::string("never")
                                              : std::to_string(ladder.first_brownout_s) + " s")
              << " vs "
              << (baseline.first_brownout_s < 0 ? std::string("never")
                                                : std::to_string(baseline.first_brownout_s) + " s")
              << "\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << json_path << ": cannot open for writing\n";
            return 1;
        }
        scenario::write_json(out, tl_name, runs);
    }
    return 0;
}
