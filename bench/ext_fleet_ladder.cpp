// Extension: degradation-ladder threshold sweep over a fleet — where
// should the rungs sit? (DESIGN.md §13, EXPERIMENTS.md).
//
// The ladder thresholds (shed / coarse / tight / silence, as state-of-
// charge fractions) were hand-set in every pre-fleet experiment. This
// bench sweeps a curated set of candidate ladders over a ladder-only
// fleet on a battery-stressed timeline and reports, per candidate, the
// fleet-wide delivered-sample fraction against total energy drawn —
// the two axes the wearable trades. Candidates on the Pareto front
// (no other candidate delivers more for less energy) are marked; the
// resulting table is committed in EXPERIMENTS.md.
//
// Eager ladders (high thresholds) shed leads early: cheap, but they
// forfeit signal they had the charge to acquire. Lazy ladders (low
// thresholds) run full-fidelity into the drought and pay in brownouts —
// delivery lost to a dead device instead of a deliberate degrade.
//
// Usage: ext_fleet_ladder [--seed S] [--devices N] [--cohorts C]
//                         [--threads T] [--engine E] [--timeline FILE]
//                         [--json FILE]
#include <array>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "scenario/timeline.hpp"

using namespace ulpmc;

namespace {

/// A battery-stressed script: weak harvest under low-flux radiation,
/// then a BLE drought on a middling harvester, then recovery. The full-
/// power draw outruns the harvester, so WHERE the ladder rungs sit
/// decides how much signal survives to the recharge.
constexpr const char* kLadderTimeline = R"(# fleet-ladder (built into ext_fleet_ladder)
block_period_s 2.0
battery_j 0.015

phase stress    480 lambda=2e-8 ble_loss=0.05 harvest_uw=35
phase drought   480 ble=down harvest_uw=40
phase recovery  240 ble_loss=0.01 harvest_uw=300
)";

struct Candidate {
    const char* name;
    scenario::LadderThresholds th;
};

/// From rung-everything-early down to rung-nothing-until-dead.
constexpr Candidate kCandidates[] = {
    {"eager-80/60/40/20", {0.80, 0.60, 0.40, 0.20}},
    {"early-70/50/30/15", {0.70, 0.50, 0.30, 0.15}},
    {"default-60/40/25/10", {0.60, 0.40, 0.25, 0.10}},
    {"mid-50/30/15/05", {0.50, 0.30, 0.15, 0.05}},
    {"lax-40/20/10/04", {0.40, 0.20, 0.10, 0.04}},
    {"late-30/15/08/03", {0.30, 0.15, 0.08, 0.03}},
    {"lazy-20/10/05/02", {0.20, 0.10, 0.05, 0.02}},
    {"never-05/03/02/01", {0.05, 0.03, 0.02, 0.01}},
};

struct Point {
    std::string name;
    double delivered = 0; ///< fleet delivered-sample fraction
    double energy_j = 0;  ///< fleet total drain [J]
    std::uint64_t sdc = 0;
    std::uint64_t brownouts = 0;
    bool pareto = false;
};

} // namespace

int main(int argc, char** argv) {
    fleet::FleetOptions base;
    base.seed = 1;
    base.devices = 48;
    base.cohorts = 2;
    base.baseline_fraction = 0; // ladder-only: the sweep is about the rungs
    std::string json_path;
    std::string timeline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            base.seed = std::stoull(value());
        } else if (arg == "--devices") {
            base.devices = std::stoull(value());
        } else if (arg == "--cohorts") {
            base.cohorts = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--threads") {
            base.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--engine") {
            if (!cluster::parse_engine(value(), base.engine)) {
                std::cerr << "--engine: unknown engine\n";
                return 2;
            }
        } else if (arg == "--timeline") {
            timeline_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::cerr << arg << ": unknown option\n";
            return 2;
        }
    }

    scenario::Timeline tl;
    try {
        if (timeline_path.empty()) {
            std::istringstream in(kLadderTimeline);
            tl = scenario::parse_timeline(in);
        } else {
            tl = scenario::load_timeline(timeline_path);
        }
    } catch (const scenario::TimelineError& e) {
        std::cerr << "timeline: " << e.what() << "\n";
        return 2;
    }

    std::vector<Point> points;
    for (const Candidate& c : kCandidates) {
        fleet::FleetOptions opt = base;
        opt.thresholds = c.th;
        fleet::FleetEngine eng(tl, opt);
        const fleet::FleetResult res = eng.run();
        const auto& t = res.aggregate.total;
        Point p;
        p.name = c.name;
        p.delivered = t.samples_total > 0 ? static_cast<double>(t.samples_delivered) /
                                                static_cast<double>(t.samples_total)
                                          : 0.0;
        p.energy_j = static_cast<double>(t.energy_nj) * 1e-9;
        p.sdc = t.sdc_blocks;
        p.brownouts = t.brownouts;
        points.push_back(p);
        std::cout << c.name << ": delivered " << 100.0 * p.delivered << "%, energy "
                  << p.energy_j << " J, " << p.brownouts << " brownouts\n";
    }

    // Pareto front on (delivered up, energy down).
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j == i) continue;
            const bool no_worse = points[j].delivered >= points[i].delivered &&
                                  points[j].energy_j <= points[i].energy_j;
            const bool better = points[j].delivered > points[i].delivered ||
                                points[j].energy_j < points[i].energy_j;
            dominated = no_worse && better;
        }
        points[i].pareto = !dominated;
    }

    std::cout << "\n| ladder (shed/coarse/tight/silence) | delivered % | energy [J] | "
                 "brownouts | SDC | Pareto |\n";
    std::cout << "|---|---:|---:|---:|---:|:---:|\n";
    for (const Point& p : points) {
        std::ostringstream row;
        row.precision(4);
        row << "| " << p.name << " | " << 100.0 * p.delivered << " | " << p.energy_j << " | "
            << p.brownouts << " | " << p.sdc << " | " << (p.pareto ? "front" : "") << " |";
        std::cout << row.str() << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << json_path << ": cannot open for writing\n";
            return 1;
        }
        out << "{\n  \"fleet_ladder_sweep\": {\n";
        out << "    \"seed\": " << base.seed << ",\n";
        out << "    \"devices\": " << base.devices << ",\n";
        out << "    \"cohorts\": " << base.cohorts << ",\n";
        out << "    \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point& p = points[i];
            out << "      {\"ladder\": \"" << p.name << "\", \"delivered_fraction\": "
                << p.delivered << ", \"energy_j\": " << p.energy_j << ", \"brownouts\": "
                << p.brownouts << ", \"sdc_blocks\": " << p.sdc << ", \"pareto\": "
                << (p.pareto ? "true" : "false") << "}" << (i + 1 < points.size() ? "," : "")
                << "\n";
        }
        out << "    ]\n  }\n}\n";
    }
    return 0;
}
