// Extension: scheduling policy for periodic biosignal jobs — just-in-time
// frequency scaling (the paper's implicit policy) vs race-to-idle with a
// retention sleep state (standard in later ULP platforms). Sweeps the
// duty cycle and locates the crossover.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"
#include "power/governor.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Extension: just-in-time vs race-to-idle scheduling",
                                 "beyond the paper (its Section IV assumes just-in-time)");

    const app::EcgBenchmark bench{};
    const auto dp = exp::characterize(cluster::ArchKind::UlpmcBank, bench);
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    const power::DutyCycleGovernor gov(model, dp.rates);

    const double period = 2.048; // one block period [s]
    const double job_ops = static_cast<double>(dp.outcome.stats.total_ops());

    Table t({"job intensity", "workload", "JIT power", "race power", "winner", "saving",
             "race busy/sleep"});
    for (const double mult : {0.1, 1.0, 5.0, 20.0, 100.0, 400.0, 1000.0}) {
        const double ops = job_ops * mult;
        if (ops / period > model.max_throughput(dp.rates)) break;
        const auto jit = gov.just_in_time(ops, period);
        const auto race = gov.race_to_idle(ops, period);
        const bool race_wins = race.energy_per_period < jit.energy_per_period;
        const double saving = 1.0 - std::min(race.energy_per_period, jit.energy_per_period) /
                                        std::max(race.energy_per_period, jit.energy_per_period);
        t.add_row({format_fixed(mult, 1) + "x ECG job", format_si(ops / period, "Ops/s"),
                   format_si(jit.average_power, "W"), format_si(race.average_power, "W"),
                   race_wins ? "race-to-idle" : "just-in-time", format_percent(saving),
                   format_fixed(race.busy_s * 1e3, 1) + " ms / " +
                       format_fixed(race.sleep_s * 1e3, 1) + " ms"});
    }
    t.print(std::cout);

    std::cout
        << "\nWith a retention sleep state (10% of active leakage) race-to-idle wins at\n"
           "light duty cycles -- the cluster computes at the voltage floor, then gates\n"
           "nearly all leakage. Once the deadline forces the supply above the floor the\n"
           "V^2 dynamic penalty flips the verdict to the paper's just-in-time policy.\n"
           "This refines, not contradicts, the paper: its Fig. 7 assumes the cluster\n"
           "has no sleep state, which its own leakage numbers make costly below\n"
           "~50 kOps/s.\n";
    return 0;
}
