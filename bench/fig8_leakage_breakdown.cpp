// Reproduces Fig. 8: dynamic vs leakage power of the circuit logic and the
// memories for light workloads (40..100 kOps/s, supply at the floor).
//
// Reproduced claims:
//   * mc-ref and ulpmc-int leak almost the same; ulpmc-bank leaks 38.8%
//     less thanks to power gating 7 of 8 IM banks;
//   * leakage becomes comparable to dynamic power around 50 kOps/s;
//   * ulpmc-int's total-power advantage therefore collapses at low
//     workloads while ulpmc-bank keeps its edge.
#include <iostream>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Dynamic vs leakage power at light workloads", "Figure 8");

    const app::EcgBenchmark bench{};
    const auto designs = exp::characterize_all(bench);

    Table t({"workload", "arch", "logic dyn", "mem dyn", "logic leak", "mem leak", "total"});
    for (const double w : {100e3, 70e3, 50e3, 40e3}) {
        for (const auto& dp : designs) {
            const power::PowerModel model(dp.arch);
            const auto rep = model.power_at(dp.rates, w);
            t.add_row({format_si(w, "Ops/s"), cluster::arch_name(dp.arch),
                       format_si(rep.dynamic.logic(), "W"), format_si(rep.dynamic.memories(), "W"),
                       format_si(rep.leakage.logic(), "W"), format_si(rep.leakage.memories(), "W"),
                       format_si(rep.total, "W")});
        }
        t.add_separator();
    }
    t.print(std::cout);

    // Leakage ratios (workload-independent at the voltage floor).
    const power::PowerModel mref(cluster::ArchKind::McRef);
    const power::PowerModel mint(cluster::ArchKind::UlpmcInt);
    const power::PowerModel mbank(cluster::ArchKind::UlpmcBank);
    const double lref = mref.leakage_power(designs[0].rates, power::cal::kVmin).total();
    const double lint = mint.leakage_power(designs[1].rates, power::cal::kVmin).total();
    const double lbank = mbank.leakage_power(designs[2].rates, power::cal::kVmin).total();

    std::cout << "\nLeakage vs mc-ref:\n"
              << "  ulpmc-int : " << exp::vs_paper_percent(1.0 - lint / lref, 0.0)
              << " (paper: \"almost the same\")\n"
              << "  ulpmc-bank: " << exp::vs_paper_percent(1.0 - lbank / lref, 38.8)
              << "  <- IM power gating, " << designs[2].rates.im_banks_gated << "/" << kImBanks
              << " banks off\n";

    // Locate the dynamic/leakage crossover for mc-ref.
    double lo = 1e3;
    double hi = 1e6;
    for (int i = 0; i < 50; ++i) {
        const double mid = std::sqrt(lo * hi);
        const auto rep = mref.power_at(designs[0].rates, mid);
        (rep.dynamic.total() < rep.leakage.total() ? lo : hi) = mid;
    }
    std::cout << "\nmc-ref dynamic == leakage at ~" << format_si(lo, "Ops/s")
              << " (paper: ~50 kOps/s)\n";
    return 0;
}
