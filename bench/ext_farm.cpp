// Extension: fault-tolerant farm chaos campaign (DESIGN.md §13).
//
// The claim under test: a farm of supervised shard worker processes —
// SIGKILLed and SIGSTOPped by a seeded chaos schedule, recovered by
// heartbeat-timeout escalation and backoff restarts with --resume —
// still merges to the EXACT bytes (JSON artifact and ULPF store) of an
// unsharded in-process run, and never re-simulates a journaled device.
//
// The bench runs three arms:
//   1. reference: the fleet engine in-process, unsharded (the ground
//      truth both for bytes and for the device-record store);
//   2. clean farm: worker processes, no chaos — isolates the
//      process/merge plumbing from the fault machinery;
//   3. chaos farm: the seeded disruption schedule (default 6 SIGKILLs +
//      2 SIGSTOPs, the stalls exercising the timeout -> SIGTERM ->
//      SIGKILL path), fresh scratch dir, same expected bytes.
//
// Every mismatch is a hard failure (exit 1): this bench is the campaign
// the CI farm job gates on. The JSON artifact carries the supervision
// counters (restarts, kills, stalls, escalations, re-simulated devices)
// — all host-timing-free except wall seconds, and never byte-compared.
//
// Usage: ext_farm --fleet-bin PATH [--seed S] [--devices N] [--cohorts C]
//                 [--workers W] [--kills K] [--stalls S] [--chaos-seed N]
//                 [--threads T] [--engine E] [--timeline FILE]
//                 [--dir DIR] [--json FILE]
#include <cerrno>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/stat.h>

#include "common/atomic_file.hpp"
#include "fleet/farm.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "fleet/store.hpp"
#include "scenario/timeline.hpp"

using namespace ulpmc;

namespace {

/// Built-in script: a copy of bench/timelines/fleet_smoke.txt (written
/// to the scratch dir when --timeline is absent — workers are separate
/// processes and must load the script from a path).
constexpr const char* kBenchTimeline = R"(# fleet-smoke (built into ext_farm)
block_period_s 2.0
battery_j 0.012

phase clean     120 harvest_uw=50
phase radiation 120 lambda=2e-8 ble_loss=0.05 harvest_uw=50
phase drought   120 ble=down harvest_uw=150
phase recovery  120 ble_loss=0.01 harvest_uw=400
)";

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int main(int argc, char** argv) {
    fleet::FarmOptions opt;
    opt.fleet.seed = 1;
    opt.fleet.devices = 96;
    opt.fleet.cohorts = 3;
    opt.workers = 4;
    opt.worker_threads = 2;
    opt.chaos_kills = 6;
    opt.chaos_stalls = 2;
    opt.chaos_seed = 7;
    opt.dir = "farm_bench";
    // Campaign-scale supervision constants: tight enough that a SIGSTOPped
    // worker is detected, killed and restarted in well under a second.
    opt.heartbeat_s = 0.1;
    opt.timeout_s = 1.0;
    opt.term_grace_s = 0.3;
    opt.backoff_base_s = 0.05;
    opt.backoff_max_s = 0.4;
    opt.poll_s = 0.02;
    unsigned ref_threads = 0;
    std::string json_path;
    std::string timeline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--fleet-bin") {
            opt.fleet_bin = value();
        } else if (arg == "--seed") {
            opt.fleet.seed = std::stoull(value());
        } else if (arg == "--devices") {
            opt.fleet.devices = std::stoull(value());
        } else if (arg == "--cohorts") {
            opt.fleet.cohorts = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--workers") {
            opt.workers = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--kills") {
            opt.chaos_kills = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--stalls") {
            opt.chaos_stalls = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--chaos-seed") {
            opt.chaos_seed = std::stoull(value());
        } else if (arg == "--threads") {
            ref_threads = static_cast<unsigned>(std::stoul(value()));
            opt.worker_threads = ref_threads;
        } else if (arg == "--engine") {
            if (!cluster::parse_engine(value(), opt.fleet.engine)) {
                std::cerr << "--engine: unknown engine\n";
                return 2;
            }
        } else if (arg == "--timeline") {
            timeline_path = value();
        } else if (arg == "--dir") {
            opt.dir = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::cerr << arg << ": unknown option\n";
            return 2;
        }
    }
    if (opt.fleet_bin.empty()) {
        std::cerr << "--fleet-bin is required (path to the ulpmc-fleet worker binary)\n";
        return 2;
    }

    if (mkdir(opt.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        std::cerr << opt.dir << ": cannot create scratch dir\n";
        return 2;
    }
    if (timeline_path.empty()) {
        timeline_path = opt.dir + "/fleet_smoke.txt";
        try {
            write_file_atomic(timeline_path, kBenchTimeline);
        } catch (const AtomicFileError& e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }
    opt.timeline_path = timeline_path;

    std::string tl_name = timeline_path;
    if (const auto slash = tl_name.find_last_of('/'); slash != std::string::npos)
        tl_name = tl_name.substr(slash + 1);

    // ---- arm 1: unsharded in-process reference -------------------------
    scenario::Timeline tl;
    try {
        tl = scenario::load_timeline(timeline_path);
    } catch (const scenario::TimelineError& e) {
        std::cerr << timeline_path << ": " << e.what() << "\n";
        return 2;
    }
    fleet::FleetOptions ref_opt = opt.fleet;
    ref_opt.shard_k = 0;
    ref_opt.shard_n = 1;
    ref_opt.threads = ref_threads;
    fleet::FleetEngine ref_eng(tl, ref_opt);
    const fleet::FleetResult ref = ref_eng.run();
    std::ostringstream ref_json_ss;
    fleet::write_json(ref_json_ss, tl_name, ref_opt, tl.block_period_s, ref.aggregate,
                      ref.records.size());
    const std::string ref_json = ref_json_ss.str();
    const std::string ref_store = opt.dir + "/reference.ulpf";
    {
        fleet::StoreHeader hdr;
        hdr.cohorts = ref_opt.cohorts;
        hdr.seed = ref_opt.seed;
        hdr.devices = ref_opt.devices;
        fleet::write_store(ref_store, hdr, ref.records);
    }
    std::cout << "reference: " << ref.records.size() << " devices in-process, "
              << ref.wall_s << " s\n";

    struct Arm {
        const char* name;
        fleet::FarmReport rep;
        bool json_identical = false;
        bool store_identical = false;
    };
    Arm arms[2] = {{"clean", {}, false, false}, {"chaos", {}, false, false}};

    int rc = 0;
    for (Arm& arm : arms) {
        const bool chaos = std::string(arm.name) == "chaos";
        fleet::FarmOptions fo = opt;
        fo.dir = opt.dir + "/" + arm.name;
        fo.json_path = fo.dir + "/merged.json";
        fo.store_path = fo.dir + "/merged.ulpf";
        if (!chaos) {
            fo.chaos_kills = 0;
            fo.chaos_stalls = 0;
        }
        try {
            fleet::Farm farm(fo, nullptr);
            arm.rep = farm.run();
        } catch (const fleet::FarmError& e) {
            std::cerr << arm.name << ": " << e.what() << "\n";
            return 1;
        }
        const fleet::FarmReport& rep = arm.rep;
        if (!rep.complete) {
            std::cerr << arm.name << ": farm did not complete (dead shards)\n";
            rc = 1;
        }
        arm.json_identical = rep.merged_json == ref_json;
        std::string merged_store_bytes, ref_store_bytes;
        arm.store_identical = read_file(fo.store_path, merged_store_bytes) &&
                              read_file(ref_store, ref_store_bytes) &&
                              merged_store_bytes == ref_store_bytes;
        std::cout << arm.name << " farm: " << (rep.complete ? "complete" : "INCOMPLETE")
                  << ", json " << (arm.json_identical ? "identical" : "DIFFERS") << ", store "
                  << (arm.store_identical ? "identical" : "DIFFERS") << ", " << rep.restarts
                  << " restarts, " << rep.chaos_kills << " kills, " << rep.chaos_stalls
                  << " stalls, " << rep.timeout_kills << " timeout escalations, "
                  << rep.devices_simulated << " simulations for " << rep.devices_journaled
                  << " devices (" << rep.duplicate_records << " re-simulated), "
                  << rep.wall_s << " s\n";
        if (!arm.json_identical || !arm.store_identical) {
            std::cerr << arm.name << ": merged artifact differs from the unsharded reference\n";
            rc = 1;
        }
        if (rep.duplicate_records != 0) {
            std::cerr << arm.name << ": a journaled device was re-simulated\n";
            rc = 1;
        }
        if (chaos) {
            // The campaign must actually have disrupted something: every
            // scheduled kill/stall delivered, and the stalls must have
            // been recovered through the timeout escalation path.
            if (rep.chaos_kills != opt.chaos_kills || rep.chaos_stalls != opt.chaos_stalls) {
                std::cerr << "chaos: schedule under-delivered (" << rep.chaos_kills << "+"
                          << rep.chaos_stalls << " of " << opt.chaos_kills << "+"
                          << opt.chaos_stalls << ")\n";
                rc = 1;
            }
            if (opt.chaos_stalls > 0 && rep.timeout_kills == 0) {
                std::cerr << "chaos: stalls were scheduled but the timeout escalation "
                             "path never fired\n";
                rc = 1;
            }
            if (rep.restarts == 0) {
                std::cerr << "chaos: no worker was ever restarted\n";
                rc = 1;
            }
        }
    }

    if (!json_path.empty()) {
        std::ostringstream out;
        out << "{\n";
        out << "  \"campaign\": {\n";
        out << "    \"devices\": " << opt.fleet.devices << ",\n";
        out << "    \"seed\": " << opt.fleet.seed << ",\n";
        out << "    \"workers\": " << opt.workers << ",\n";
        out << "    \"kills\": " << opt.chaos_kills << ",\n";
        out << "    \"stalls\": " << opt.chaos_stalls << ",\n";
        out << "    \"chaos_seed\": " << opt.chaos_seed << "\n";
        out << "  },\n";
        for (std::size_t i = 0; i < 2; ++i) {
            const Arm& arm = arms[i];
            const fleet::FarmReport& rep = arm.rep;
            out << "  \"" << arm.name << "\": {\n";
            out << "    \"complete\": " << (rep.complete ? "true" : "false") << ",\n";
            out << "    \"json_identical\": " << (arm.json_identical ? "true" : "false")
                << ",\n";
            out << "    \"store_identical\": " << (arm.store_identical ? "true" : "false")
                << ",\n";
            out << "    \"restarts\": " << rep.restarts << ",\n";
            out << "    \"chaos_kills\": " << rep.chaos_kills << ",\n";
            out << "    \"chaos_stalls\": " << rep.chaos_stalls << ",\n";
            out << "    \"timeout_terms\": " << rep.timeout_terms << ",\n";
            out << "    \"timeout_kills\": " << rep.timeout_kills << ",\n";
            out << "    \"preempted_exits\": " << rep.preempted_exits << ",\n";
            out << "    \"devices_simulated\": " << rep.devices_simulated << ",\n";
            out << "    \"devices_journaled\": " << rep.devices_journaled << ",\n";
            out << "    \"duplicate_records\": " << rep.duplicate_records << ",\n";
            out << "    \"wall_s\": " << rep.wall_s << "\n";
            out << "  }" << (i == 0 ? "," : "") << "\n";
        }
        out << "}\n";
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << json_path << ": cannot open for writing\n";
            return 1;
        }
        jf << out.str();
    }
    std::cout << (rc == 0 ? "farm chaos campaign: all checks passed\n"
                          : "farm chaos campaign: FAILURES above\n");
    return rc;
}
