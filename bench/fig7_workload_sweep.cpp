// Reproduces Fig. 7: total power of the three designs across the workload
// range 5 kOps/s ... ~637 MOps/s, normalized to mc-ref. Voltage and
// frequency scaling are applied above the ~10 MOps/s reachable at the
// voltage floor; below it only the frequency scales (as in the paper).
//
// Headline claims reproduced here:
//   * at the highest common workload (~637 MOps/s): ulpmc-int saves
//     ~29.6%, ulpmc-bank ~39.5% vs mc-ref;
//   * around 10 MOps/s: ulpmc-bank saves ~40.5%;
//   * at 5 kOps/s (leakage-dominated): ulpmc-int's advantage vanishes
//     (its curve meets mc-ref's) while ulpmc-bank keeps 38.8% thanks to
//     IM power gating.
//
// NOTE on absolute numbers: our model is calibrated to Table II
// (80 pJ/op at 1.2 V); Fig. 7's own mW annotations imply ~624 pJ/op — a
// ~7.8x internal inconsistency of the paper (DESIGN.md §4). The
// normalized curves, i.e. everything Fig. 7 actually plots, match.
#include <algorithm>
#include <iostream>
#include <vector>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Normalized power consumption at various workloads", "Figure 7");

    const app::EcgBenchmark bench{};
    const auto designs = exp::characterize_all(bench);

    std::vector<power::PowerModel> models;
    double common_max = 1e18;
    for (const auto& dp : designs) {
        models.emplace_back(dp.arch);
        common_max = std::min(common_max, models.back().max_throughput(dp.rates));
    }

    std::vector<double> workloads = {5e3, 5e4, 1e5, 5e5, 5e6, 1e7, 5e7, 5e8, common_max};

    Table t({"workload [Ops/s]", "mc-ref", "ulpmc-int", "ulpmc-bank", "norm int", "norm bank",
             "supply [V]"});
    for (const double w : workloads) {
        std::vector<double> p;
        double v = 0;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            const auto rep = models[i].power_at(designs[i].rates, w);
            p.push_back(rep.total);
            if (i == 0) v = rep.op.v;
        }
        t.add_row({format_si(w, "Ops/s"), format_si(p[0], "W"), format_si(p[1], "W"),
                   format_si(p[2], "W"), format_fixed(p[1] / p[0], 3), format_fixed(p[2] / p[0], 3),
                   format_fixed(v, 2)});
    }
    t.print(std::cout);

    const auto saving = [&](std::size_t i, double w) {
        return 1.0 - models[i].power_at(designs[i].rates, w).total /
                         models[0].power_at(designs[0].rates, w).total;
    };

    std::cout << "\nHeadline savings vs mc-ref:\n"
              << "  at " << format_si(common_max, "Ops/s") << " (max workload):  ulpmc-int "
              << exp::vs_paper_percent(saving(1, common_max), 29.6) << ",  ulpmc-bank "
              << exp::vs_paper_percent(saving(2, common_max), 39.5) << '\n'
              << "  at 10 MOps/s:                ulpmc-bank "
              << exp::vs_paper_percent(saving(2, 1e7), 40.5) << '\n'
              << "  at 5 kOps/s (leak-dominated): ulpmc-bank "
              << exp::vs_paper_percent(saving(2, 5e3), 38.8) << ",  ulpmc-int "
              << exp::vs_paper_percent(saving(1, 5e3), 0.0) << " (paper: \"almost equal\")\n";

    std::cout << "\nAbsolute scale note: our model is calibrated to Table II; Fig. 7's mW\n"
                 "annotations (397.4/279.8/240.4 mW at the top point, 1.11/0.79/0.66 mW at\n"
                 "10 MOps/s) are ~7.8x larger than Table II implies -- see EXPERIMENTS.md.\n";
    return 0;
}
