// Extension: whole-node energy accounting — compute + radio + fidelity.
// The paper measures only the processing cluster; this bench closes its
// motivating argument ("compress ... for wireless transmission") by
// pricing the transmission with a BLE-class radio model and scoring the
// reconstruction quality (PRD) the base station actually obtains.
//
// Options per 8-lead block (2.048 s):
//   raw          transmit the 16-bit samples, no computation
//   cs           compressed sensing only (the 9-bit quantized symbols)
//   cs+huffman   the paper's full pipeline (the measured bitstream)
#include <iostream>

#include "app/benchmark.hpp"
#include "app/reconstruct.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/governor.hpp"
#include "power/radio.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Extension: whole-node energy (compute + radio) and fidelity",
                                 "beyond the paper's node-only measurements");

    const app::EcgBenchmark bench{};
    const auto dp = exp::characterize(cluster::ArchKind::UlpmcBank, bench);
    const power::RadioModel radio;
    const double period = 2.048;

    // --- payload sizes per block ---------------------------------------------
    const std::size_t raw_bits = app::kEcgLeads * app::kEcgBlockSamples * 16;
    const std::size_t cs_bits = app::kEcgLeads * app::kCsOutputLen * 9; // quantized symbols
    std::size_t huff_bits = 0;
    for (unsigned p = 0; p < app::kEcgLeads; ++p) huff_bits += bench.golden_bitstream(p).bits;

    // --- compute energy per block ---------------------------------------------
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    const double full_ops = static_cast<double>(dp.outcome.stats.total_ops());
    // CS-only: the Huffman phase is ~5% of the ops (measured via symbols).
    const double cs_ops = full_ops * 0.95;
    const auto compute_energy = [&](double ops) {
        if (ops <= 0) return 0.0;
        return model.power_at(dp.rates, ops / period).total * period;
    };

    // --- fidelity: PRD of lead 0 under each option ----------------------------
    const auto& x0 = bench.lead_samples(0);
    std::vector<double> y_exact(app::kCsOutputLen);
    for (std::size_t i = 0; i < y_exact.size(); ++i)
        y_exact[i] = static_cast<double>(static_cast<SWord>(bench.golden_measurements(0)[i]));
    const auto y_q = app::dequantize_symbols(bench.golden_symbols(0));
    const double prd_q = app::prd_percent(x0, app::cs_reconstruct(bench.matrix(), y_q));

    struct Option {
        const char* name;
        std::size_t bits;
        double compute_j;
        std::string prd;
    };
    const Option options[] = {
        {"raw samples", raw_bits, 0.0, "0% (lossless)"},
        {"CS (quantized)", cs_bits, compute_energy(cs_ops),
         format_fixed(prd_q, 1) + "% PRD"},
        {"CS + Huffman (paper)", huff_bits, compute_energy(full_ops),
         format_fixed(prd_q, 1) + "% PRD"},
    };

    Table t({"option", "payload/block", "radio energy", "compute energy", "total/block",
             "vs raw"});
    double raw_total = 0;
    for (const auto& o : options) {
        const double radio_j = radio.tx_energy(o.bits);
        const double total = radio_j + o.compute_j;
        if (o.bits == raw_bits) raw_total = total;
        t.add_row({o.name, format_count(o.bits) + " b", format_si(radio_j, "J"),
                   format_si(o.compute_j, "J"), format_si(total, "J"),
                   format_percent(1.0 - total / raw_total)});
    }
    t.print(std::cout);

    std::cout << "\nReconstruction fidelity at the base station (lead 0): " << options[2].prd
              << " -- the Huffman stage is lossless on the quantized symbols, so CS and\n"
                 "CS+Huffman reconstruct identically; Huffman buys the last "
              << format_percent(1.0 - static_cast<double>(huff_bits) / cs_bits)
              << " of radio bits.\n"
              << "Average whole-node power: "
              << format_si((radio.tx_energy(huff_bits) + compute_energy(full_ops)) / period, "W")
              << " vs " << format_si(radio.tx_energy(raw_bits) / period, "W")
              << " for raw streaming -- the compression pays for the cluster many times\n"
                 "over, which is the paper's raison d'etre made quantitative.\n";
    return 0;
}
