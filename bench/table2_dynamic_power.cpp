// Reproduces Table II: dynamic power distributions at 8 MOps/s and 1.2 V
// for the three designs, and the proposed designs' active-power savings
// (paper: ulpmc-int 29.7%, ulpmc-bank 40.6% vs mc-ref).
//
// Method identical to the paper: run the ECG benchmark cycle-accurately,
// convert event counts to power with the calibrated per-event energies,
// evaluate at the Table II operating point (8 MOps/s aggregate, nominal
// 1.2 V supply, dynamic power only).
#include <iostream>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Dynamic power distribution at 8 MOps/s and 1.2 V", "Table II");

    const app::EcgBenchmark bench{};
    const auto designs = exp::characterize_all(bench);

    constexpr double kWorkload = 8e6; // ops/s, the table's operating point
    const double v = power::cal::kVnom;

    // Paper's Table II rows [mW].
    struct PaperCol {
        double total, cores, im, dm, dxbar, ixbar, clock;
    };
    const PaperCol paper[] = {{0.64, 0.18, 0.36, 0.07, 0.02, 0.0, 0.03},
                              {0.45, 0.25, 0.05, 0.06, 0.03, 0.03, 0.04},
                              {0.38, 0.21, 0.05, 0.06, 0.02, 0.01, 0.04}};

    Table t({"component", "mc-ref", "ulpmc-int", "ulpmc-bank"});
    std::vector<power::PowerBreakdown> p;
    for (const auto& dp : designs) {
        const power::PowerModel model(dp.arch);
        p.push_back(model.dynamic_power(dp.rates, kWorkload, v));
    }

    const auto row = [&](const char* name, auto get, auto getp) {
        t.add_row({name,
                   format_si(get(p[0]), "W") + "  (paper " + format_fixed(getp(paper[0]), 2) + " mW)",
                   format_si(get(p[1]), "W") + "  (paper " + format_fixed(getp(paper[1]), 2) + " mW)",
                   format_si(get(p[2]), "W") + "  (paper " + format_fixed(getp(paper[2]), 2) + " mW)"});
    };

    row("Total", [](const auto& b) { return b.total(); }, [](const auto& c) { return c.total; });
    t.add_separator();
    row("Cores", [](const auto& b) { return b.cores; }, [](const auto& c) { return c.cores; });
    row("IM", [](const auto& b) { return b.im; }, [](const auto& c) { return c.im; });
    row("DM", [](const auto& b) { return b.dm; }, [](const auto& c) { return c.dm; });
    row("D-Xbar", [](const auto& b) { return b.dxbar; }, [](const auto& c) { return c.dxbar; });
    row("I-Xbar", [](const auto& b) { return b.ixbar; }, [](const auto& c) { return c.ixbar; });
    row("Clock tree", [](const auto& b) { return b.clock; }, [](const auto& c) { return c.clock; });
    t.print(std::cout);

    std::cout << "\nActive power savings vs mc-ref:\n"
              << "  ulpmc-int : "
              << exp::vs_paper_percent(1.0 - p[1].total() / p[0].total(), 29.7) << '\n'
              << "  ulpmc-bank: "
              << exp::vs_paper_percent(1.0 - p[2].total() / p[0].total(), 40.6) << '\n';

    std::cout << "\nMeasured per-op event rates (model inputs):\n";
    Table r({"arch", "IM acc/op", "DM acc/op", "D-Xbar req/op", "I-Xbar req/op", "ops/cycle"});
    for (const auto& dp : designs) {
        r.add_row({cluster::arch_name(dp.arch), format_fixed(dp.rates.im_bank_accesses, 4),
                   format_fixed(dp.rates.dm_bank_accesses, 4),
                   format_fixed(dp.rates.dxbar_requests, 4),
                   format_fixed(dp.rates.ixbar_requests, 4), format_fixed(dp.rates.ops_per_cycle, 3)});
    }
    r.print(std::cout);
    return 0;
}
