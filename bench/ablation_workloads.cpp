// Extension: how workload character changes the architecture ranking.
// The paper evaluates one application (CS + Huffman, mostly lockstep).
// This bench runs three workload classes from the paper's own motivation
// — streaming compression, event detection, plain filtering — on all
// three architectures and shows that the proposed design's *relative*
// merit depends on how synchronization-friendly the code is.
#include <iostream>

#include "app/benchmark.hpp"
#include "app/ecg.hpp"
#include "app/fir.hpp"
#include "app/rpeak.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/power_model.hpp"

using namespace ulpmc;

namespace {

struct WorkloadResult {
    cluster::ClusterStats stats;
};

WorkloadResult run_on(cluster::ArchKind arch, const isa::Program& prog,
                      const mmu::DmLayout& layout, Addr x_base) {
    const app::EcgGenerator gen;
    cluster::Cluster cl(cluster::make_config(arch, layout), prog);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto x = gen.block(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(x_base + i),
                       static_cast<Word>(x[i]));
    }
    cl.run();
    for (unsigned p = 0; p < kNumCores; ++p) {
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None) {
            std::cerr << "trap on core " << p << "!\n";
            std::exit(1);
        }
    }
    return {cl.stats()};
}

void report(const char* name, const isa::Program& prog, const mmu::DmLayout& layout,
            Addr x_base) {
    Table t({"arch", "cycles", "vs mc-ref", "IM acc/op", "dyn power @ 8 MOps/s"});
    double ref_cycles = 0;
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        const auto r = run_on(arch, prog, layout, x_base);
        if (arch == cluster::ArchKind::McRef) ref_cycles = static_cast<double>(r.stats.cycles);
        const auto rates = power::EventRates::from_run(r.stats);
        const power::PowerModel model(arch);
        t.add_row({cluster::arch_name(arch), format_count(r.stats.cycles),
                   format_fixed(static_cast<double>(r.stats.cycles) / ref_cycles, 3),
                   format_fixed(rates.im_bank_accesses, 3),
                   format_si(model.dynamic_power(rates, 8e6, 1.2).total(), "W")});
    }
    std::cout << "-- " << name << " --\n";
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int main() {
    exp::print_experiment_header("Workload-character ablation across the three designs",
                                 "generalizes the paper's single-benchmark evaluation");

    {
        const app::EcgBenchmark bench{};
        report("CS + Huffman (the paper's benchmark: lockstep-friendly)", bench.program(),
               bench.layout().dm_layout(), bench.layout().x_base());
    }
    {
        const auto fir = app::FirKernel::moving_average(8);
        report("FIR filtering (branch-light, fully regular)", fir.build_program(512),
               app::FirLayout::dm_layout(), app::FirLayout::kXBase);
    }
    {
        report("R-peak detection (3 data-dependent branches/sample)",
               app::build_rpeak_program(), app::RpeakLayout::dm_layout(),
               app::RpeakLayout::kXBase);
    }

    std::cout << "Reading: on regular code the banked IM is free (cores never desync) and\n"
                 "the broadcast merges ~everything; on branchy event-detection code the\n"
                 "banked organization pays heavily while the interleaved one degrades\n"
                 "gracefully -- i.e., ulpmc-bank's leakage advantage is bought with a\n"
                 "throughput tax that only materializes on data-dependent control flow.\n";
    return 0;
}
