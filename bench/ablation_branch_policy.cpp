// Ablation: the TamaRISC branch-redirect policy. The paper reports 90.1k
// instructions retiring in 90.2k cycles (CPI ~ 1.001) on a benchmark with
// a taken branch every ~14 instructions — only possible if taken branches
// cost zero bubbles. This bench runs the real single-lead benchmark
// kernel on the explicit pipeline model under the three redirect policies
// and shows what slower redirect logic would do to throughput (and hence
// to the minimum voltage/power at a fixed real-time deadline).
#include <iostream>

#include "app/benchmark.hpp"
#include "common/table.hpp"
#include "core/pipeline_core.hpp"
#include "exp/experiments.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Branch-redirect policy vs CPI on the benchmark kernel",
                                 "Section III-A (core design discussion)");

    const app::EcgBenchmark bench{};
    const auto& lay = bench.layout();

    Table t({"policy", "cycles", "instructions", "CPI", "taken branches", "bubbles",
             "throughput loss"});
    double zero_cycles = 0;
    for (const auto policy : {core::BranchPolicy::ZeroPenalty, core::BranchPolicy::OnePenalty,
                              core::BranchPolicy::TwoPenalty}) {
        core::FlatMemory mem(lay.shared_words() + app::BenchmarkLayout::kPrivateWords);
        mem.load(0, bench.program().data);
        const auto& x = bench.lead_samples(0);
        for (std::size_t i = 0; i < x.size(); ++i)
            mem.poke(static_cast<Addr>(lay.x_base() + i), static_cast<Word>(x[i]));

        core::PipelineCore c(bench.program().text, mem, policy);
        c.state().pc = bench.program().entry;
        c.run();
        const auto& s = c.stats();
        if (policy == core::BranchPolicy::ZeroPenalty) zero_cycles = static_cast<double>(s.cycles);

        const char* name = policy == core::BranchPolicy::ZeroPenalty ? "zero (paper)"
                           : policy == core::BranchPolicy::OnePenalty ? "one bubble"
                                                                      : "two bubbles";
        t.add_row({name, format_count(s.cycles), format_count(s.instret),
                   format_fixed(s.cpi(), 4), format_count(s.taken_branches),
                   format_count(s.branch_bubbles),
                   format_percent(1.0 - zero_cycles / static_cast<double>(s.cycles))});
    }
    t.print(std::cout);

    std::cout << "\nPaper anchor: 90.20k cycles for ~90.1k instructions (CPI ~ 1.001) is\n"
                 "reachable only by the zero-bubble redirect; the same-cycle branch-target\n"
                 "path is also why the paper's critical path runs through \"the direct\n"
                 "branch instruction when the branch address is read from the DM\" (§IV-B).\n";
    return 0;
}
