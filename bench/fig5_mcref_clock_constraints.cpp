// Reproduces Fig. 5: power vs throughput of the mc-ref design synthesized
// for different clock constraints (7.1 / 12 / 16 / 20 ns). Voltage scales
// with the required frequency down to the floor; the curves' left ends
// (voltage floor) carry the paper's mW annotations, whose RATIOS our
// synthesis-factor model reproduces: the 12 ns design burns 15.5% less
// than the speed-optimized 7.1 ns design at the floor while giving up
// only the throughput beyond 1/12 ns — the paper's reason to pick 12 ns.
#include "exp/clock_constraint_figure.hpp"
#include "exp/experiments.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("mc-ref: power for various clock constraints", "Figure 5");
    exp::clock_constraint_figure(cluster::ArchKind::McRef, {7.1, 12.0, 16.0, 20.0},
                                 {1.03, 0.87, 0.86, 0.85}, 15.5);
    return 0;
}
