// Extension: memory-organization design space. The paper fixes 16 DM
// banks and 8 IM banks without justifying the numbers; this sweep varies
// both (at constant total capacity) and reports what the paper's own
// metrics — conflict stalls, bank accesses, area — say about the choice.
//
// Energy note: per-access SRAM energy grows with bank size (fewer, larger
// banks), modeled linearly through the same two-point fit as the area
// model; absolute numbers are indicative, the trend is the point.
#include <array>
#include <iostream>
#include <string>

#include "app/benchmark.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/area.hpp"
#include "power/calibration.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

/// Per-access energy scaling with bank capacity (relative to the paper's
/// geometry): cell-array energy scales ~linearly with the bank's bitline
/// length, i.e. with words per bank.
double dm_access_energy(std::size_t bank_words) {
    const double rel = static_cast<double>(bank_words) / kDmWordsPerBank;
    return power::cal::kDmAccessEnergy * (0.4 + 0.6 * rel);
}

} // namespace

int main(int argc, char** argv) {
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--engine" && i + 1 < argc &&
            cluster::parse_engine(argv[i + 1], engine)) {
            ++i;
            continue;
        }
        std::cerr << "usage: ext_bank_sweep [--engine reference|fast|trace]\n";
        return 2;
    }

    exp::print_experiment_header("Extension: DM/IM bank-count design space",
                                 "beyond the paper (its Section III choices)");

    const app::EcgBenchmark bench{};
    sweep::SweepRunner pool;

    std::cout << "-- Data-memory banks (64 kB total, ulpmc-bank, benchmark run) --\n";
    Table dm({"DM banks", "bank size", "cycles", "DM conflicts", "bank accesses", "DM area [kGE]",
              "DM energy/op"});
    static constexpr std::array dm_bank_counts = {16u, 32u};
    const auto dm_runs =
        pool.map(std::span<const unsigned>(dm_bank_counts), [&](unsigned banks) {
            auto cfg =
                cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
            cfg.dm_banks = banks;
            cfg.dm_bank_words = kDmWordsTotal / banks;
            cfg.engine = engine;
            return std::make_pair(cfg, bench.run(cfg));
        });
    for (std::size_t i = 0; i < dm_runs.size(); ++i) {
        const unsigned banks = dm_bank_counts[i];
        const auto& [cfg, out] = dm_runs[i];
        if (!out.verified) {
            std::cerr << "verification failed at " << banks << " banks\n";
            return 1;
        }
        const auto& s = out.stats;
        const double area = power::sram_bank_area_kge(cfg.dm_bank_words * 2) * banks;
        const double e_op = dm_access_energy(cfg.dm_bank_words) *
                            static_cast<double>(s.dm_bank_accesses()) /
                            static_cast<double>(s.total_ops());
        dm.add_row({std::to_string(banks), std::to_string(cfg.dm_bank_words * 2 / 1024) + " kB",
                    format_count(s.cycles), format_count(s.dxbar.denied),
                    format_count(s.dm_bank_accesses()), format_fixed(area, 1),
                    format_si(e_op, "J")});
    }
    dm.print(std::cout);
    std::cout << "Paper's choice (16) already makes private traffic conflict-free by\n"
                 "construction; doubling the banks buys little time but costs area.\n\n";

    std::cout << "-- Instruction-memory banks (96 kB total, ulpmc-bank + gating) --\n";
    Table im({"IM banks", "bank size", "cycles", "banks gated", "leakage alive", "IM area [kGE]"});
    static constexpr std::array im_bank_counts = {4u, 8u, 16u, 32u};
    const auto im_runs =
        pool.map(std::span<const unsigned>(im_bank_counts), [&](unsigned banks) {
            auto cfg =
                cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
            cfg.im_banks = banks;
            cfg.im_bank_words = kImWordsTotal / banks;
            cfg.engine = engine;
            return std::make_pair(cfg, bench.run(cfg));
        });
    for (std::size_t i = 0; i < im_runs.size(); ++i) {
        const unsigned banks = im_bank_counts[i];
        const auto& [cfg, out] = im_runs[i];
        if (!out.verified) {
            std::cerr << "verification failed at " << banks << " IM banks\n";
            return 1;
        }
        const auto& s = out.stats;
        const double area = power::sram_bank_area_kge(cfg.im_bank_words * 3) * banks;
        const double alive = static_cast<double>(banks - s.im_banks_gated) / banks;
        im.add_row({std::to_string(banks), std::to_string(cfg.im_bank_words * 3 / 1024) + " kB",
                    format_count(s.cycles), std::to_string(s.im_banks_gated),
                    format_percent(alive), format_fixed(area, 1)});
    }
    im.print(std::cout);
    std::cout << "Finer IM banking gates a larger leakage fraction (the 552 B program\n"
                 "pins exactly one bank alive regardless), but each bank's fixed overhead\n"
                 "(~27 kGE) makes many small banks expensive -- the tension behind the\n"
                 "paper's 8-bank choice.\n";
    return 0;
}
