// Reproduces §IV-C1: energy efficiency of the TamaRISC core — 15.6 pJ/op
// at 1.0 V — against the state-of-the-art biomedical cores the paper
// cites (Kwong et al. JSSC'11: 47 pJ/cycle at 1.0 V in 130 nm, CPI > 1;
// Ickes et al. ESSCIRC'11: 19.7..27.0 pJ/op estimated at 1.0 V in 65 nm).
//
// The measurement mirrors the paper's: the core component of the
// benchmark's energy divided by executed operations, scaled to 1.0 V with
// the square-law.
#include <iostream>

#include "core/functional_core.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Energy efficiency of the TamaRISC core", "Section IV-C1");

    const app::EcgBenchmark bench{};
    const auto dp = exp::characterize(cluster::ArchKind::McRef, bench);

    // Core energy per op at 1.2 V, scaled to the comparison voltage.
    const power::PowerModel model(cluster::ArchKind::McRef);
    const auto e = model.energy_per_op(dp.rates);
    const double at_1v0 = e.cores * power::VfModel::energy_scale(1.0);

    Table t({"core", "process", "energy", "notes"});
    t.add_row({"TamaRISC (this work)", "90 nm LL",
               format_fixed(at_1v0 * 1e12, 1) + " pJ/op (paper 15.6)",
               "1 op/cycle, 11-instruction ISA"});
    t.add_row({"Kwong et al. [15]", "130 nm", "47 pJ/cycle", "CPI > 1, 16-bit"});
    t.add_row({"Ickes et al. [16]", "65 nm", "19.7 - 27.0 pJ/op", "32-bit, estimated at 1.0 V"});
    t.print(std::cout);

    // Also report the benchmark-level picture the comparison rests on.
    std::cout << "\nWhole-cluster energy per operation (mc-ref, 1.2 V): "
              << format_fixed(e.total() * 1e12, 1) << " pJ/op\n"
              << "Executed operations per benchmark block (8 leads): "
              << format_count(dp.outcome.stats.total_ops()) << '\n'
              << "Achieved compression: " << format_fixed(dp.outcome.bits_per_sample, 2)
              << " bits/sample after CS (50%) + Huffman\n";
    return 0;
}
