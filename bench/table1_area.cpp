// Reproduces Table I: component areas of the reference and the proposed
// architectures in kGE (1 GE = 3.136 um^2). The proposed design pays
// ~20% more logic area (I-Xbar + broadcast + MMUs) but less than 2% more
// total area, because the memories dominate (~90%).
#include <iostream>

#include "exp/experiments.hpp"
#include "power/area.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Area results of the architectures", "Table I");

    const auto ref = power::area_of(cluster::ArchKind::McRef);
    const auto prop = power::area_of(cluster::ArchKind::UlpmcBank); // == UlpmcInt

    const auto cell = [](double kge, double paper) {
        return format_fixed(kge, 1) + " (paper " + format_fixed(paper, 1) + ")";
    };

    Table t({"component [kGE]", "mc-ref", "ulpmc-int / ulpmc-bank"});
    t.add_row({"Total", cell(ref.total(), 1108.1), cell(prop.total(), 1128.8)});
    t.add_separator();
    t.add_row({"Cores", cell(ref.cores, 81.5), cell(prop.cores, 87.3)});
    t.add_row({"IMs", cell(ref.im, 429.4), cell(prop.im, 429.4)});
    t.add_row({"DMs", cell(ref.dm, 576.7), cell(prop.dm, 576.7)});
    t.add_row({"D-Xbar", cell(ref.dxbar, 20.5), cell(prop.dxbar, 23.0)});
    t.add_row({"I-Xbar", "-", cell(prop.ixbar, 12.4)});
    t.print(std::cout);

    std::cout << "\nLogic area increase:  "
              << format_percent(prop.logic() / ref.logic() - 1.0)
              << "  (paper: ~20%, \"notably due to the I-Xbar and broadcasting\")\n"
              << "Total area increase:  "
              << format_percent(prop.total() / ref.total() - 1.0) << "  (paper: <2%)\n"
              << "Memory share of total: " << format_percent(prop.memories() / prop.total())
              << "  (paper: ~90%)\n"
              << "Total silicon area:    " << format_fixed(prop.total_um2() / 1e6, 3)
              << " mm^2 (proposed), " << format_fixed(ref.total_um2() / 1e6, 3) << " mm^2 (mc-ref)\n";
    return 0;
}
