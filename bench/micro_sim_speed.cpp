// Simulator micro-benchmarks (google-benchmark): throughput of the hot
// paths — instruction decode, ALU, crossbar arbitration, single-core ISS
// stepping and whole-cluster cycle stepping. These guard the simulator's
// usability for large design-space sweeps; they reproduce no paper figure.
//
// `--json FILE` writes the google-benchmark JSON report to FILE (shorthand
// for --benchmark_out=FILE --benchmark_out_format=json); the CI
// perf-regression job diffs it against the committed baseline
// BENCH_sim_speed.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/cluster.hpp"
#include "core/alu.hpp"
#include "core/functional_core.hpp"
#include "fault/campaign.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "sweep/sweep.hpp"
#include "xbar/crossbar.hpp"

using namespace ulpmc;

namespace {

void BM_Decode(benchmark::State& state) {
    const InstrWord w = isa::encode(isa::make_alu(isa::Opcode::ADD, isa::dreg(1), isa::spostinc(2),
                                                  isa::sreg(3)));
    for (auto _ : state) {
        auto d = isa::decode(w);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Decode);

void BM_Alu(benchmark::State& state) {
    Word a = 0x1234;
    Word b = 0x0F0F;
    for (auto _ : state) {
        const auto r = core::alu_exec(isa::Opcode::ADD, a, b);
        a = r.value;
        benchmark::DoNotOptimize(a);
        b ^= 0x2401;
    }
}
BENCHMARK(BM_Alu);

void BM_XbarArbitrate(benchmark::State& state) {
    xbar::Crossbar xb(16, 16, true);
    std::vector<xbar::Request> reqs(16);
    std::vector<xbar::Grant> grants(16);
    for (unsigned m = 0; m < 16; ++m)
        reqs[m] = {.active = true, .is_write = (m % 3 == 0), .bank = static_cast<BankId>(m % 5),
                   .offset = m % 7u};
    Cycle cycle = 0;
    for (auto _ : state) {
        xb.arbitrate_into(reqs, ++cycle, grants);
        benchmark::DoNotOptimize(grants.data());
    }
}
BENCHMARK(BM_XbarArbitrate);

// The crossbar's common case: every master claims a different bank (private
// data traffic, interleaved fetch with diverged PCs). `fast` exercises the
// claim-bitmask fast path, `slow` forces the reference round-robin arbiter
// on identical inputs.
void BM_XbarArbitrateConflictFree(benchmark::State& state, bool fast) {
    xbar::Crossbar xb(16, 16, true);
    xb.set_fast_path(fast);
    std::vector<xbar::Request> reqs(16);
    std::vector<xbar::Grant> grants(16);
    for (unsigned m = 0; m < 16; ++m)
        reqs[m] = {.active = true, .is_write = (m % 3 == 0), .bank = static_cast<BankId>(m),
                   .offset = m % 7u};
    Cycle cycle = 0;
    for (auto _ : state) {
        xb.arbitrate_into(reqs, ++cycle, grants);
        benchmark::DoNotOptimize(grants.data());
    }
}
BENCHMARK_CAPTURE(BM_XbarArbitrateConflictFree, fast, true);
BENCHMARK_CAPTURE(BM_XbarArbitrateConflictFree, slow, false);

void BM_FunctionalCoreStep(benchmark::State& state) {
    const auto prog = isa::assemble(R"(
            movi r1, 0
            movi r2, 1000
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
            movi r1, 0
            movi r2, 1000
            bra  al, loop
    )");
    core::FlatMemory mem;
    core::FunctionalCore c(prog.text, mem);
    for (auto _ : state) {
        c.step();
        benchmark::DoNotOptimize(c.state().pc);
    }
}
BENCHMARK(BM_FunctionalCoreStep);

// The same endless kernel through FunctionalCore::run()'s block-granular
// dispatcher (pre-decoded superblocks, no per-instruction fetch checks).
// The ratio against BM_FunctionalCoreStep is the ISS dispatch speedup.
void BM_FunctionalCoreRunBlocks(benchmark::State& state) {
    const auto prog = isa::assemble(R"(
            movi r1, 0
            movi r2, 1000
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
            movi r1, 0
            movi r2, 1000
            bra  al, loop
    )");
    core::FlatMemory mem;
    core::FunctionalCore c(prog.text, mem);
    constexpr std::uint64_t kChunk = 1024;
    for (auto _ : state) {
        c.run(kChunk);
        benchmark::DoNotOptimize(c.state().pc);
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * static_cast<double>(kChunk),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalCoreRunBlocks);

// The acceptance workload for the simulation fast path: an 8-core
// ulpmc-int cluster on an endless store/loop kernel. With staggered starts
// the PCs spread over the interleaved IM banks, so fetch and private-data
// traffic are conflict-free — the case the pre-decoded IM and the
// claim-bitmask arbiter are built for. `fast` and `slow` run the identical
// configuration with the fast path on/off (the slow path IS the old
// engine), so the ratio of the two is the measured speedup.
void BM_ClusterStep(benchmark::State& state, cluster::SimEngine engine, bool stagger) {
    const auto prog = isa::assemble(R"(
            movi r1, 512
            movi r2, 1000
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
            movi r1, 512
            movi r2, 1000
            bra  al, loop
    )");
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcInt,
                                    {.shared_words = 512, .private_words_per_core = 2048});
    cfg.engine = engine;
    cfg.stagger_start = stagger;
    cluster::Cluster cl(cfg, prog);
    for (auto _ : state) {
        bool alive = cl.step(); // the program never halts: one cycle per iteration
        benchmark::DoNotOptimize(alive);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kNumCores);
    std::uint64_t fetches = 0;
    for (const auto& c : cl.stats().core) fetches += c.im_fetches;
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
    state.counters["fetches/s"] =
        benchmark::Counter(static_cast<double>(fetches), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_ClusterStep, int8_trace, cluster::SimEngine::Trace, true);
BENCHMARK_CAPTURE(BM_ClusterStep, int8_fast, cluster::SimEngine::Fast, true);
BENCHMARK_CAPTURE(BM_ClusterStep, int8_slow, cluster::SimEngine::Reference, true);
BENCHMARK_CAPTURE(BM_ClusterStep, int8_lockstep_fast, cluster::SimEngine::Fast, false);
BENCHMARK_CAPTURE(BM_ClusterStep, int8_lockstep_slow, cluster::SimEngine::Reference, false);

// The trace engine's acceptance workload (DESIGN.md §10): a single active
// core on a conflict-free loop, driven through run() so the superblock
// dispatcher and the timing memo engage (per-cycle step() is the generic
// path by design). The kernel mirrors the shape of the app's per-lead
// filter loops — a compute stretch of ALU work, then one streaming store
// per iteration — so the memo lane sees the mem-free runs real phases
// have. One iteration = one 4096-cycle burst; the trace/ref cycles/s
// ratio is the engine-tier speedup on conflict-free phases.
void BM_ClusterRunConflictFree(benchmark::State& state, cluster::SimEngine engine) {
    const auto prog = isa::assemble(R"(
            movi r1, 512
            movi r2, 1000
    loop:   add  r3, r3, #1
            xor  r4, r4, r3
            add  r5, r4, r3
            and  r6, r5, r4
            or   r7, r6, r3
            sub  r8, r7, r4
            add  r8, r8, r6
            mov  @r1+, r8
            sub  r2, r2, #1
            bra  ne, loop
            movi r1, 512
            movi r2, 1000
            bra  al, loop
    )");
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank,
                                    {.shared_words = 512, .private_words_per_core = 2048});
    cfg.cores = 1;
    cfg.engine = engine;
    cluster::Cluster cl(cfg, prog);
    constexpr Cycle kBurst = 4096;
    Cycle target = 0;
    for (auto _ : state) {
        target += kBurst;
        cl.run(target); // the program never halts: exactly kBurst cycles
        benchmark::DoNotOptimize(cl.stats().cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * static_cast<double>(kBurst),
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_ClusterRunConflictFree, trace, cluster::SimEngine::Trace);
BENCHMARK_CAPTURE(BM_ClusterRunConflictFree, fast, cluster::SimEngine::Fast);
BENCHMARK_CAPTURE(BM_ClusterRunConflictFree, reference, cluster::SimEngine::Reference);

void BM_ClusterCycle(benchmark::State& state) {
    const app::EcgBenchmark bench{};
    const auto cfg =
        cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
    auto cl = std::make_unique<cluster::Cluster>(cfg, bench.program());
    for (auto _ : state) {
        bool alive = cl->step();
        if (!alive) {
            // The benchmark ran to completion: restart on a fresh cluster
            // (construction cost excluded from timing).
            state.PauseTiming();
            cl = std::make_unique<cluster::Cluster>(cfg, bench.program());
            state.ResumeTiming();
            alive = cl->step();
        }
        benchmark::DoNotOptimize(alive);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kNumCores);
}
BENCHMARK(BM_ClusterCycle);

// Design-space sweep throughput: six architecture points simulated to
// completion per iteration. `pool1` is the sequential reference (no pool
// threads), `pool_hw` uses the hardware concurrency — on a multi-core
// host the ratio shows the sweep-runner scaling, on a single-core CI
// container both degenerate to the same work.
void BM_Sweep(benchmark::State& state, unsigned threads) {
    const auto prog = isa::assemble(R"(
            movi r1, 512
            movi r2, 200
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    std::vector<sweep::SweepPoint> points;
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        for (const bool stagger : {false, true}) {
            auto cfg = cluster::make_config(arch,
                                            {.shared_words = 512, .private_words_per_core = 2048});
            cfg.stagger_start = stagger;
            points.push_back({.label = std::string(cluster::arch_name(arch)),
                              .cfg = cfg,
                              .max_cycles = 100'000});
        }
    }
    sweep::SweepRunner pool(threads);
    for (auto _ : state) {
        auto out = pool.run(prog, points);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["points/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * static_cast<double>(points.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_Sweep, pool1, 1u);
BENCHMARK_CAPTURE(BM_Sweep, pool_hw, 0u);

// Campaign throughput (DESIGN.md §11): the batched engine vs the trace
// tier on identical fault campaigns — byte-identical outcome tables,
// wall-clock is the only difference, so the pair ratio IS the engine
// speedup. `streaming_*` is the fleet shape the batched tier targets
// (sparse strikes over a long stream, clean prefix/tail memoized):
// one resilient SEU row plus one checkpointed burst row. `oneshot_*`
// is the run-to-completion shape where every injection diverges for
// good — the ratio there hovers near 1 and guards against the batched
// bookkeeping ever making campaigns slower than trace.
void BM_CampaignThroughput(benchmark::State& state, cluster::SimEngine engine, bool streaming) {
    sweep::SweepRunner pool(1);
    fault::CampaignConfig seu;
    seu.injections = 20;
    seu.seed = 42;
    seu.ecc = true;
    seu.engine = engine;
    seu.batch = 8;
    unsigned injections = 0;
    if (streaming) {
        const app::StreamingBenchmark stream({.use_barrier = true}, 4);
        auto burst = seu;
        burst.reg_protection = core::RegProtection::Parity;
        burst.checkpoint = true;
        burst.burst_len = 3;
        burst.reg_burst = 2;
        for (auto _ : state) {
            const auto a =
                fault::run_streaming_campaign(stream, cluster::ArchKind::UlpmcBank, seu, pool);
            const auto b =
                fault::run_streaming_campaign(stream, cluster::ArchKind::UlpmcBank, burst, pool);
            injections += a.cfg.injections + b.cfg.injections;
            benchmark::DoNotOptimize(a.runs.data());
            benchmark::DoNotOptimize(b.runs.data());
        }
    } else {
        const app::EcgBenchmark bench{};
        seu.injections = 40;
        for (auto _ : state) {
            const auto a = fault::run_campaign(bench, cluster::ArchKind::UlpmcBank, seu, pool);
            injections += a.cfg.injections;
            benchmark::DoNotOptimize(a.runs.data());
        }
    }
    state.counters["inj/s"] =
        benchmark::Counter(static_cast<double>(injections), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CampaignThroughput, streaming_trace, cluster::SimEngine::Trace, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignThroughput, streaming_batched, cluster::SimEngine::Batched, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignThroughput, oneshot_trace, cluster::SimEngine::Trace, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignThroughput, oneshot_batched, cluster::SimEngine::Batched, false)
    ->Unit(benchmark::kMillisecond);

void BM_FullBenchmarkRun(benchmark::State& state) {
    const app::EcgBenchmark bench{};
    for (auto _ : state) {
        const auto out = bench.run(cluster::ArchKind::UlpmcBank);
        benchmark::DoNotOptimize(out.stats.cycles);
    }
}
BENCHMARK(BM_FullBenchmarkRun)->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: translate our CI-facing `--json FILE` shorthand into
// google-benchmark's --benchmark_out pair, forward everything else.
int main(int argc, char** argv) {
    std::vector<std::string> fwd;
    fwd.emplace_back(argv[0]);
    std::string json;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json = argv[++i];
        } else {
            fwd.push_back(arg);
        }
    }
    if (!json.empty()) {
        fwd.push_back("--benchmark_out=" + json);
        fwd.push_back("--benchmark_out_format=json");
    }
    std::vector<char*> args;
    args.reserve(fwd.size());
    for (auto& s : fwd) args.push_back(s.data());
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
