// Simulator micro-benchmarks (google-benchmark): throughput of the hot
// paths — instruction decode, ALU, crossbar arbitration, single-core ISS
// stepping and whole-cluster cycle stepping. These guard the simulator's
// usability for large design-space sweeps; they reproduce no paper figure.
#include <benchmark/benchmark.h>

#include <memory>

#include "app/benchmark.hpp"
#include "cluster/cluster.hpp"
#include "core/alu.hpp"
#include "core/functional_core.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "xbar/crossbar.hpp"

using namespace ulpmc;

namespace {

void BM_Decode(benchmark::State& state) {
    const InstrWord w = isa::encode(isa::make_alu(isa::Opcode::ADD, isa::dreg(1), isa::spostinc(2),
                                                  isa::sreg(3)));
    for (auto _ : state) {
        auto d = isa::decode(w);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_Decode);

void BM_Alu(benchmark::State& state) {
    Word a = 0x1234;
    Word b = 0x0F0F;
    for (auto _ : state) {
        const auto r = core::alu_exec(isa::Opcode::ADD, a, b);
        a = r.value;
        benchmark::DoNotOptimize(a);
        b ^= 0x2401;
    }
}
BENCHMARK(BM_Alu);

void BM_XbarArbitrate(benchmark::State& state) {
    xbar::Crossbar xb(16, 16, true);
    std::vector<xbar::Request> reqs(16);
    std::vector<xbar::Grant> grants(16);
    for (unsigned m = 0; m < 16; ++m)
        reqs[m] = {.active = true, .is_write = (m % 3 == 0), .bank = static_cast<BankId>(m % 5),
                   .offset = m % 7u};
    Cycle cycle = 0;
    for (auto _ : state) {
        xb.arbitrate_into(reqs, ++cycle, grants);
        benchmark::DoNotOptimize(grants.data());
    }
}
BENCHMARK(BM_XbarArbitrate);

void BM_FunctionalCoreStep(benchmark::State& state) {
    const auto prog = isa::assemble(R"(
            movi r1, 0
            movi r2, 1000
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
            movi r1, 0
            movi r2, 1000
            bra  al, loop
    )");
    core::FlatMemory mem;
    core::FunctionalCore c(prog.text, mem);
    for (auto _ : state) {
        c.step();
        benchmark::DoNotOptimize(c.state().pc);
    }
}
BENCHMARK(BM_FunctionalCoreStep);

void BM_ClusterCycle(benchmark::State& state) {
    const app::EcgBenchmark bench{};
    const auto cfg =
        cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
    auto cl = std::make_unique<cluster::Cluster>(cfg, bench.program());
    for (auto _ : state) {
        if (!cl->step()) {
            // The benchmark ran to completion: restart on a fresh cluster
            // (construction cost excluded from timing).
            state.PauseTiming();
            cl = std::make_unique<cluster::Cluster>(cfg, bench.program());
            state.ResumeTiming();
            cl->step();
        }
        benchmark::DoNotOptimize(cl->stats().cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kNumCores);
}
BENCHMARK(BM_ClusterCycle);

void BM_FullBenchmarkRun(benchmark::State& state) {
    const app::EcgBenchmark bench{};
    for (auto _ : state) {
        const auto out = bench.run(cluster::ArchKind::UlpmcBank);
        benchmark::DoNotOptimize(out.stats.cycles);
    }
}
BENCHMARK(BM_FullBenchmarkRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
