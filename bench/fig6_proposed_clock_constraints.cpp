// Reproduces Fig. 6: power vs throughput of the proposed design
// synthesized for different clock constraints (8.9 / 12 / 16 / 20 ns).
// The fastest constraint is 8.9 ns rather than mc-ref's 7.1 ns because
// the I-Xbar adds ~1.8 ns to the critical path (direct branch with the
// target address read from the DM) — a delay the paper shows is harmless
// for biosignal workloads. The 12 ns design saves 24.1% at the voltage
// floor vs the speed-optimized one.
#include "exp/clock_constraint_figure.hpp"
#include "exp/experiments.hpp"

using namespace ulpmc;

int main() {
    exp::print_experiment_header("Proposed design: power for various clock constraints",
                                 "Figure 6");
    exp::clock_constraint_figure(cluster::ArchKind::UlpmcBank, {8.9, 12.0, 16.0, 20.0},
                                 {0.54, 0.41, 0.39, 0.38}, 24.1);
    return 0;
}
