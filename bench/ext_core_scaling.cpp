// Extension: core-count scaling — the premise the paper inherits from its
// reference [9] (Dogan et al., PATMOS'11): for a FIXED real-time workload,
// more cores running slower at a lower voltage beat fewer cores running
// fast. The paper's architecture supports "up to eight cores"; this bench
// quantifies why eight. Each active core processes one ECG lead; the
// real-time deadline is one 512-sample block per lead every 2.048 s.
#include <array>
#include <iostream>
#include <string>

#include "app/benchmark.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

int main(int argc, char** argv) {
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--engine" && i + 1 < argc &&
            cluster::parse_engine(argv[i + 1], engine)) {
            ++i;
            continue;
        }
        std::cerr << "usage: ext_core_scaling [--engine reference|fast|trace]\n";
        return 2;
    }

    exp::print_experiment_header("Extension: core-count scaling at a fixed real-time job",
                                 "the paper's premise (ref. [9], PATMOS'11)");

    const app::EcgBenchmark bench{};
    const double block_period_s = 512.0 / 250.0;

    // The four benchmark simulations feed BOTH tables below: run each
    // exactly once, fanned out over the sweep pool.
    static constexpr std::array core_counts = {1u, 2u, 4u, 8u};
    sweep::SweepRunner pool;
    const auto runs = pool.map(std::span<const unsigned>(core_counts), [&](unsigned cores) {
        // The 8-lead job is fixed; with fewer cores each core processes
        // 8/cores leads sequentially -> cycles scale inversely with cores.
        auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
        cfg.cores = cores;
        cfg.engine = engine;
        return bench.run(cfg);
    });

    Table t({"cores", "leads/core", "cycles/job", "f required", "supply", "total power",
             "vs 1 core"});
    double p1 = 0;
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        const unsigned cores = core_counts[i];
        const auto& out = runs[i];
        if (!out.verified) {
            std::cerr << "verification failed at " << cores << " cores\n";
            return 1;
        }
        const unsigned leads_per_core = kNumCores / cores;
        const double cycles_job = static_cast<double>(out.stats.cycles) * leads_per_core;
        const double f_req = cycles_job / block_period_s;

        const auto rates = power::EventRates::from_run(out.stats);
        const power::PowerModel model(cluster::ArchKind::UlpmcBank);
        // Workload in ops/s for the full 8-lead job:
        const double workload =
            static_cast<double>(out.stats.total_ops()) * leads_per_core / block_period_s;
        const auto rep = model.power_at(rates, workload);
        if (cores == 1) p1 = rep.total;

        t.add_row({std::to_string(cores), std::to_string(leads_per_core),
                   format_count(static_cast<std::uint64_t>(cycles_job)), format_si(f_req, "Hz"),
                   format_fixed(rep.op.v, 2) + " V", format_si(rep.total, "W"),
                   cores == 1 ? "-" : format_percent(1.0 - rep.total / p1)});
    }
    t.print(std::cout);

    std::cout << "\nAt this light workload every configuration already sits at the voltage\n"
                 "floor, so the parallelism dividend is modest -- but at heavier biosignal\n"
                 "jobs (multiply the lead count or sample rate) the single-core system is\n"
                 "forced up the V^2 curve while eight cores stay near threshold: the\n"
                 "near-threshold-computing argument of the paper's introduction.\n";

    // The heavier-job variant: 50x the workload (same runs, re-priced).
    Table h({"cores", "f required", "supply", "total power", "vs 1 core"});
    double ph1 = 0;
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        const unsigned cores = core_counts[i];
        const auto& out = runs[i];
        const auto rates = power::EventRates::from_run(out.stats);
        const power::PowerModel model(cluster::ArchKind::UlpmcBank);
        const unsigned leads_per_core = kNumCores / cores;
        const double workload =
            50.0 * static_cast<double>(out.stats.total_ops()) * leads_per_core / block_period_s;
        if (workload > model.max_throughput(rates)) {
            h.add_row({std::to_string(cores), "-", "-", "infeasible", "-"});
            continue;
        }
        const auto rep = model.power_at(rates, workload);
        if (cores == 1) ph1 = rep.total;
        h.add_row({std::to_string(cores), format_si(rep.op.f_hz, "Hz"),
                   format_fixed(rep.op.v, 2) + " V", format_si(rep.total, "W"),
                   cores == 1 || ph1 == 0 ? "-" : format_percent(1.0 - rep.total / ph1)});
    }
    std::cout << "\n50x workload (e.g. high-rate multi-biosignal fusion):\n";
    h.print(std::cout);
    return 0;
}
