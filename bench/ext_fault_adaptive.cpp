// Extension: adaptive vs fixed checkpoint intervals under a two-phase
// upset environment (DESIGN.md §9).
//
// A wearable's soft-error rate is anything but constant (altitude,
// shielding, solar activity). This experiment streams the multi-block ECG
// workload through ONE continuous cluster while seeded register upsets
// arrive at a LOW rate over the first 3/4 of the stream and a HIGH rate
// over the final quarter — the scenario a fixed checkpoint interval
// cannot win: tuned for the quiet phase it bleeds re-execution in the
// burst, tuned for the burst it pays checkpoint traffic all through the
// quiet lead. The adaptive controller (fault::UpsetRateEstimator feeding
// CheckpointRunner's online re-solve of
//   T* = sqrt(2 * cores * words/core * E_word / (lambda * E_cycle)))
// tracks the phase change and re-tunes the interval, so it must deliver
// the same zero-SDC coverage at LOWER total overhead (checkpoint-save +
// re-execution energy) than the best fixed interval in the ladder.
//
// Usage: ext_fault_adaptive [--runs N] [--seed S] [--json FILE]
//                           [--engine reference|fast|trace] [--shard K/N]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "app/streaming.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "fault/campaign.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

/// Strike rates [upsets/cycle]: quiet lead (first 3/4 of the stream, a
/// benign environment) vs burst tail (a high-flux episode).
constexpr double kLambdaLow = 1e-5;
constexpr double kLambdaHigh = 1e-3;
/// Fixed-interval ladder the adaptive controller competes against. The
/// per-phase optima T* = sqrt(2S/(lambda*E)) land at ~2263 (quiet) and
/// ~226 (burst), so the ladder brackets BOTH — "beats best fixed" is a
/// real contest against intervals tuned for either phase, not a strawman.
constexpr Cycle kFixedIntervals[] = {200, 600, 2000, 6000};
constexpr unsigned kBlocks = 6;

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

bool parse_shard(const std::string& s, unsigned& index, unsigned& count) {
    const auto slash = s.find('/');
    if (slash == std::string::npos) return false;
    std::uint64_t k = 0, n = 0;
    if (!parse_u64(s.substr(0, slash).c_str(), k)) return false;
    if (!parse_u64(s.substr(slash + 1).c_str(), n)) return false;
    if (n < 1 || k >= n) return false;
    index = static_cast<unsigned>(k);
    count = static_cast<unsigned>(n);
    return true;
}

struct PolicyResult {
    std::string name;
    fault::CampaignResult r;
};

void write_json(std::ostream& os, const std::vector<PolicyResult>& results, unsigned cores,
                unsigned shard_index, unsigned shard_count) {
    os << "{\n";
    if (shard_count > 1) os << "  \"shard\": \"" << shard_index << "/" << shard_count << "\",\n";
    os << "  \"campaigns\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i].r;
        os << "    {\"workload\": \"adaptive-stream\", \"policy\": \"" << results[i].name
           << "\", \"arch\": \"" << cluster::arch_name(r.arch)
           << "\", \"ecc\": " << (r.cfg.ecc ? "true" : "false") << ", \"protection\": \""
           << core::reg_protection_name(r.cfg.reg_protection)
           << "\", \"checkpoint\": " << (r.cfg.checkpoint ? "true" : "false")
           << ", \"burst_len\": " << r.cfg.burst_len << ", \"reg_burst\": " << r.cfg.reg_burst
           << ", \"seed\": " << r.cfg.seed << ", \"injections\": " << r.runs.size()
           << ", \"clean_cycles\": " << r.clean_cycles << ", \"energy_per_op\": " << r.energy_per_op
           << ",\n     \"cores\": " << cores << ", \"strikes\": " << r.strikes
           << ", \"checkpoints\": " << r.checkpoints << ", \"reexec_cycles\": " << r.reexec_cycles
           << ", \"interval_updates\": " << r.interval_updates
           << ", \"overhead_energy\": " << r.overhead_energy << ",\n     \"outcomes\": {";
        for (unsigned o = 0; o < fault::kOutcomeCount; ++o) {
            os << (o ? ", " : "") << '"' << fault::outcome_name(static_cast<fault::Outcome>(o))
               << "\": " << r.counts[o];
        }
        os << "}, \"coverage\": " << r.coverage() << "}" << (i + 1 < results.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    fault::CampaignConfig cfg;
    cfg.injections = 12; // one "injection" = one full multi-block streaming run
    cfg.seed = 42;
    cfg.ecc = true;
    cfg.reg_protection = core::RegProtection::Parity;
    // Register upsets only: under parity every consumed strike is a
    // DETECTED trap, so the estimator's observed event rate is exactly the
    // rate that drives the rollback cost it is tuning against.
    cfg.kinds = fault::fault_bit(fault::FaultKind::RegUpset);
    cfg.checkpoint = true;
    cfg.lambda_low = kLambdaLow;
    cfg.lambda_high = kLambdaHigh;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t v = 0;
        if (arg == "--runs" && i + 1 < argc && parse_u64(argv[++i], v) && v >= 1) {
            cfg.injections = static_cast<unsigned>(v);
        } else if (arg == "--seed" && i + 1 < argc && parse_u64(argv[++i], v)) {
            cfg.seed = v;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            if (!cluster::parse_engine(argv[++i], cfg.engine)) {
                std::cerr << "unknown engine '" << argv[i]
                          << "' (expected reference, fast or trace)\n";
                return 2;
            }
        } else if (arg == "--shard" && i + 1 < argc &&
                   parse_shard(argv[++i], cfg.shard_index, cfg.shard_count)) {
            // parsed in place
        } else {
            std::cerr << "usage: ext_fault_adaptive [--runs N] [--seed S] [--json FILE]\n"
                         "                          [--engine reference|fast|trace] [--shard K/N]\n";
            return 2;
        }
    }

    exp::print_experiment_header("Extension: adaptive checkpoint intervals",
                                 "beyond the paper (self-tuning resilience, DESIGN.md §9)");
    std::cout << cfg.injections << " streaming runs per policy (" << kBlocks
              << " blocks, seed " << cfg.seed << "), register upsets at " << kLambdaLow
              << " /cycle over the first " << cfg.lambda_split * 100 << "% of the stream, then "
              << kLambdaHigh << " /cycle (burst).\n\n";

    const app::StreamingBenchmark stream({.use_barrier = true}, kBlocks);
    sweep::SweepRunner pool;
    std::vector<PolicyResult> results;

    Table t({"policy", "rolled-back", "trapped", "SDC", "coverage", "strikes", "ckpts", "re-exec",
             "retunes", "overhead"});
    for (const Cycle interval : kFixedIntervals) {
        fault::CampaignConfig c = cfg;
        c.adaptive_checkpoint = false;
        c.checkpoint_interval = interval;
        const auto r =
            fault::run_adaptive_campaign(stream, cluster::ArchKind::UlpmcBank, c, pool);
        t.add_row({"fixed-" + std::to_string(interval),
                   std::to_string(r.count(fault::Outcome::RolledBack)),
                   std::to_string(r.count(fault::Outcome::Trapped)),
                   std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                   std::to_string(r.strikes), std::to_string(r.checkpoints),
                   std::to_string(r.reexec_cycles), "-", format_si(r.overhead_energy, "J")});
        results.push_back({"fixed-" + std::to_string(interval), r});
    }
    {
        fault::CampaignConfig c = cfg;
        c.adaptive_checkpoint = true;
        c.checkpoint_interval = 2000; // starting interval; the controller re-solves
        const auto r =
            fault::run_adaptive_campaign(stream, cluster::ArchKind::UlpmcBank, c, pool);
        t.add_row({"adaptive", std::to_string(r.count(fault::Outcome::RolledBack)),
                   std::to_string(r.count(fault::Outcome::Trapped)),
                   std::to_string(r.count(fault::Outcome::Sdc)), format_percent(r.coverage(), 1),
                   std::to_string(r.strikes), std::to_string(r.checkpoints),
                   std::to_string(r.reexec_cycles), std::to_string(r.interval_updates),
                   format_si(r.overhead_energy, "J")});
        results.push_back({"adaptive", r});
    }
    t.print(std::cout);

    const auto& adaptive = results.back().r;
    double best_fixed = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (const auto& p : results) {
        if (p.name == "adaptive") continue;
        if (p.r.overhead_energy < best_fixed) {
            best_fixed = p.r.overhead_energy;
            best_name = p.name;
        }
    }
    std::cout << "\nOverhead = checkpoint-save energy + re-executed-cycle energy (the two\n"
                 "terms the controller trades off). Best fixed interval: " << best_name << " at "
              << format_si(best_fixed, "J") << "; adaptive: "
              << format_si(adaptive.overhead_energy, "J") << " ("
              << format_percent(adaptive.overhead_energy / best_fixed - 1.0, 1)
              << " vs best fixed). The controller re-tuned " << adaptive.interval_updates
              << " times tracking the rate step.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        write_json(os, results, kNumCores, cfg.shard_index, cfg.shard_count);
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
