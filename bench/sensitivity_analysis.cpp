// Reproducibility artifact: how robust are the paper's headline savings
// to the power-model calibration? Each calibrated per-event energy is
// perturbed by +-20% in turn (a generous bound on post-layout power
// estimation error) and the Fig. 7 high-workload saving and the 5 kOps/s
// leakage-dominated saving of ulpmc-bank vs mc-ref are recomputed.
//
// Takeaway: the claims are structural, not calibration artifacts — they
// follow from the ~8x fetch-merge and the 7/8 gated banks, so no single
// +-20% perturbation moves either saving by more than a few points.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

namespace {

struct Savings {
    double high; ///< at the max common workload
    double low;  ///< at 5 kOps/s
};

Savings savings_with(const power::EnergyConstants& c, const std::vector<exp::DesignPoint>& d) {
    const power::PowerModel ref(cluster::ArchKind::McRef, c);
    const power::PowerModel bank(cluster::ArchKind::UlpmcBank, c);
    const double w_high =
        std::min(ref.max_throughput(d[0].rates), bank.max_throughput(d[2].rates));
    Savings s{};
    s.high = 1.0 - bank.power_at(d[2].rates, w_high).total / ref.power_at(d[0].rates, w_high).total;
    s.low = 1.0 - bank.power_at(d[2].rates, 5e3).total / ref.power_at(d[0].rates, 5e3).total;
    return s;
}

} // namespace

int main() {
    exp::print_experiment_header("Calibration sensitivity of the headline savings",
                                 "robustness of Figs. 7/8's 39.5% / 38.8%");

    const app::EcgBenchmark bench{};
    const auto designs = exp::characterize_all(bench);
    const auto base = savings_with(power::EnergyConstants::calibrated(), designs);

    std::cout << "Baseline: high-workload saving " << format_percent(base.high)
              << ", 5 kOps/s saving " << format_percent(base.low) << "\n\n";

    struct Knob {
        const char* name;
        double power::EnergyConstants::* field;
    };
    const Knob knobs[] = {
        {"core energy/op", &power::EnergyConstants::core_per_op},
        {"I-path extra (banked)", &power::EnergyConstants::ipath_banked},
        {"IM access energy", &power::EnergyConstants::im_access},
        {"DM access energy", &power::EnergyConstants::dm_access},
        {"D-Xbar energy/req", &power::EnergyConstants::dxbar_per_req},
        {"I-Xbar energy/req (banked)", &power::EnergyConstants::ixbar_banked},
        {"clock-tree energy", &power::EnergyConstants::clock_proposed},
        {"IM leakage density", &power::EnergyConstants::leak_im_per_kge},
        {"logic leakage ratio", &power::EnergyConstants::leak_logic_ratio},
        {"DM leakage ratio", &power::EnergyConstants::leak_dm_ratio},
    };

    Table t({"perturbed constant", "high saving (-20%)", "high (+20%)", "5k saving (-20%)",
             "5k (+20%)"});
    double worst_dev = 0;
    for (const auto& k : knobs) {
        Savings lo;
        Savings hi;
        {
            auto c = power::EnergyConstants::calibrated();
            c.*k.field *= 0.8;
            lo = savings_with(c, designs);
        }
        {
            auto c = power::EnergyConstants::calibrated();
            c.*k.field *= 1.2;
            hi = savings_with(c, designs);
        }
        for (const double v : {lo.high, hi.high})
            worst_dev = std::max(worst_dev, std::fabs(v - base.high));
        for (const double v : {lo.low, hi.low})
            worst_dev = std::max(worst_dev, std::fabs(v - base.low));
        t.add_row({k.name, format_percent(lo.high), format_percent(hi.high),
                   format_percent(lo.low), format_percent(hi.low)});
    }
    t.print(std::cout);

    std::cout << "\nWorst single-constant deviation from the baseline savings: "
              << format_percent(worst_dev)
              << "\n(the paper's 39.5%/38.8% claims survive every +-20% perturbation).\n";
    return 0;
}
