// Extension: time-resolved energy profile of the benchmark — which
// program phase burns what. The paper reports only whole-run averages;
// stepping the cluster and differencing the event counters at the
// CS-to-Huffman boundary splits every component's energy by phase, which
// explains *where* the broadcast savings come from (the CS phase performs
// 94% of the instruction fetches).
#include <iostream>

#include "app/benchmark.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"
#include "power/power_model.hpp"

using namespace ulpmc;

namespace {

struct PhaseCounters {
    Cycle cycles = 0;
    std::uint64_t ops = 0;
    std::uint64_t im = 0;
    std::uint64_t dm = 0;
    std::uint64_t dx = 0;
    std::uint64_t ix = 0;
};

PhaseCounters snapshot(const cluster::ClusterStats& s, Cycle cycles) {
    return {cycles, s.total_ops(), s.im_bank_accesses, s.dm_bank_accesses(), s.dxbar.grants,
            s.ixbar.grants};
}

PhaseCounters minus(const PhaseCounters& a, const PhaseCounters& b) {
    return {a.cycles - b.cycles, a.ops - b.ops, a.im - b.im, a.dm - b.dm, a.dx - b.dx,
            a.ix - b.ix};
}

/// Component energies of one phase at 1.2 V [J].
struct PhaseEnergy {
    double cores, im, dm, xbars, clock;
    double total() const { return cores + im + dm + xbars + clock; }
};

PhaseEnergy energy_of(const PhaseCounters& c) {
    using namespace power::cal;
    PhaseEnergy e{};
    e.cores = (kCoreEnergyPerOp + kIPathExtraBanked) * static_cast<double>(c.ops);
    e.im = kImAccessEnergy * static_cast<double>(c.im);
    e.dm = kDmAccessEnergy * static_cast<double>(c.dm);
    e.xbars = kDXbarEnergyPerReq * kDXbarBroadcastFactor * static_cast<double>(c.dx) +
              kIXbarEnergyPerReqBanked * static_cast<double>(c.ix);
    e.clock = kClockEnergyProposed * static_cast<double>(c.ops);
    return e;
}

} // namespace

int main() {
    exp::print_experiment_header("Extension: per-phase energy profile (CS vs Huffman)",
                                 "beyond the paper's whole-run averages");

    const app::EcgBenchmark bench{};
    const PAddr hf_start = bench.program().text_addr("hf_sym");

    cluster::Cluster cl(cluster::make_config(cluster::ArchKind::UlpmcBank,
                                             bench.layout().dm_layout()),
                        bench.program());
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto& x = bench.lead_samples(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(bench.layout().x_base() + i),
                       static_cast<Word>(x[i]));
    }

    // Step until core 0 crosses into the Huffman region, snapshot, finish.
    PhaseCounters at_boundary{};
    Cycle cycles = 0;
    bool crossed = false;
    while (cl.step()) {
        ++cycles;
        if (!crossed && cl.core_state(0).pc >= hf_start) {
            at_boundary = snapshot(cl.stats(), cycles);
            crossed = true;
        }
    }
    const PhaseCounters total = snapshot(cl.stats(), cl.stats().cycles);
    const PhaseCounters cs = at_boundary;
    const PhaseCounters hf = minus(total, at_boundary);

    const auto print_phase = [&](const char* name, const PhaseCounters& c) {
        const PhaseEnergy e = energy_of(c);
        Table t({"component", "energy", "share"});
        t.add_row({"Cores", format_si(e.cores, "J"), format_percent(e.cores / e.total())});
        t.add_row({"IM", format_si(e.im, "J"), format_percent(e.im / e.total())});
        t.add_row({"DM", format_si(e.dm, "J"), format_percent(e.dm / e.total())});
        t.add_row({"Crossbars", format_si(e.xbars, "J"), format_percent(e.xbars / e.total())});
        t.add_row({"Clock", format_si(e.clock, "J"), format_percent(e.clock / e.total())});
        std::cout << name << ": " << format_count(c.cycles) << " cycles, "
                  << format_count(c.ops) << " ops, total " << format_si(e.total(), "J")
                  << " @1.2 V\n";
        t.print(std::cout);
        std::cout << '\n';
    };

    print_phase("CS phase (data-independent, lockstep)", cs);
    print_phase("Huffman phase (data-dependent, desynchronizing)", hf);

    std::cout << "Cycle split: CS " << format_percent(static_cast<double>(cs.cycles) / total.cycles)
              << ", Huffman " << format_percent(static_cast<double>(hf.cycles) / total.cycles)
              << "; fetch traffic split: CS "
              << format_percent(static_cast<double>(cs.im) / total.im) << ", Huffman "
              << format_percent(static_cast<double>(hf.im) / total.im) << ".\n"
              << "The broadcast's 8x fetch merge therefore acts almost entirely on the CS\n"
                 "phase -- the energy argument behind keeping the cores synchronized.\n";
    return 0;
}
