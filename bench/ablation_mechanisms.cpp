// Ablation: which of the proposed architecture's mechanisms buys what?
// The paper argues the savings come from the COMBINATION of instruction
// broadcast, data broadcast, the private/shared DM reorganization and IM
// power gating. This bench switches each off independently and reports
// cycles, IM accesses and total power at the Table II operating point —
// the quantitative version of §IV-C2's qualitative discussion.
#include <iostream>

#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

namespace {

struct Variant {
    const char* name;
    cluster::ArchKind arch;       // base architecture + power model
    bool im_broadcast, dm_broadcast, gate, luts_shared, stagger;
};

} // namespace

int main() {
    exp::print_experiment_header("Mechanism ablation (broadcast / DM reorg / gating)",
                                 "Section IV-C2 (discussion)");

    using cluster::ArchKind;
    const Variant variants[] = {
        {"mc-ref (baseline)", ArchKind::McRef, false, false, false, false, true},
        {"proposed, full (ulpmc-bank)", ArchKind::UlpmcBank, true, true, true, false, false},
        {"  - without IM gating (== ulpmc-int power)", ArchKind::UlpmcInt, true, true, false,
         false, false},
        {"  - without I-Xbar broadcast", ArchKind::UlpmcBank, false, true, true, false, false},
        {"  - without D-Xbar broadcast", ArchKind::UlpmcBank, true, false, true, false, false},
        {"  - without DM reorg (shared LUTs)", ArchKind::UlpmcBank, true, true, true, true,
         false},
    };

    Table t({"variant", "cycles", "IM accesses", "IM acc/op", "power @ 8 MOps/s, 1.2 V",
             "power @ 5 kOps/s"});
    for (const auto& v : variants) {
        app::BenchmarkOptions opt;
        opt.luts_shared = v.luts_shared;
        const app::EcgBenchmark bench(opt);

        auto cfg = cluster::make_config(v.arch, bench.layout().dm_layout());
        cfg.im_broadcast = v.im_broadcast;
        cfg.dm_broadcast = v.dm_broadcast;
        cfg.gate_unused_im_banks = v.gate;
        cfg.stagger_start = v.stagger;

        const auto out = bench.run(cfg);
        if (!out.verified) {
            std::cerr << "verification failed for " << v.name << "\n";
            return 1;
        }
        const auto rates = power::EventRates::from_run(out.stats);
        const power::PowerModel model(v.arch);
        const double p_dyn = model.dynamic_power(rates, 8e6, power::cal::kVnom).total();
        const double p_low = model.power_at(rates, 5e3).total;

        t.add_row({v.name, format_count(out.stats.cycles), format_count(out.stats.im_bank_accesses),
                   format_fixed(rates.im_bank_accesses, 3), format_si(p_dyn, "W"),
                   format_si(p_low, "W")});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: disabling the I-Xbar broadcast sends IM accesses back toward one\n"
           "per core-op (the mc-ref pathology); disabling the D-Xbar broadcast makes the\n"
           "lockstep shared-matrix reads serialize 8-ways, destroying the synchronization\n"
           "that instruction broadcast depends on; shared LUTs reintroduce the Huffman\n"
           "conflicts; and only the gated variant keeps its advantage at 5 kOps/s.\n";
    return 0;
}
