// Quickstart: assemble a TamaRISC program from source, run it on the
// functional ISS, then run the same binary on the full cycle-accurate
// 8-core cluster and look at what the interconnect did.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "core/functional_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

using namespace ulpmc;

int main() {
    // A dot product over two 8-element vectors in shared memory,
    // accumulated in r5 and stored to the core's private scratch.
    const char* source = R"(
        ; dot product: r5 = sum(a[i] * b[i])
                .entry main
        main:   movi r1, vec_a
                movi r2, vec_b
                movi r3, 8          ; element count
                movi r5, 0
        loop:   mov  r6, @r1+
                mull r6, r6, @r2+
                add  r5, r5, r6
                sub  r3, r3, #1
                bra  ne, loop
                movi r7, 64         ; private scratch address
                mov  @r7, r5
                hlt

                .data
        vec_a:  .word 1, 2, 3, 4, 5, 6, 7, 8
        vec_b:  .word 8, 7, 6, 5, 4, 3, 2, 1
    )";

    const isa::Program prog = isa::assemble(source);

    std::cout << "Assembled " << prog.text.size() << " instructions ("
              << prog.text_bytes() << " bytes):\n";
    for (std::size_t pc = 0; pc < prog.text.size(); ++pc)
        std::cout << "  " << pc << ":\t" << isa::disassemble_word(prog.text[pc],
                                                                  static_cast<PAddr>(pc))
                  << '\n';

    // --- 1. functional ISS --------------------------------------------------
    const auto run = core::run_program(prog);
    std::cout << "\nFunctional ISS: r5 = " << run.state.regs[5] << " (expected 120), "
              << run.instret << " instructions, trap = " << core::trap_name(run.trap) << "\n";

    // --- 2. the full cluster ------------------------------------------------
    // 64 shared words (the vectors), 128 private words per core.
    const mmu::DmLayout layout{.shared_words = 64, .private_words_per_core = 128};
    cluster::Cluster cl(cluster::make_config(cluster::ArchKind::UlpmcBank, layout), prog);
    cl.run();

    const auto& s = cl.stats();
    std::cout << "\nCycle-accurate cluster (ulpmc-bank), all " << s.core.size()
              << " cores ran the same binary:\n";
    Table t({"core", "result", "instructions", "halted at cycle"});
    for (unsigned p = 0; p < s.core.size(); ++p) {
        t.add_row({"core " + std::to_string(p),
                   std::to_string(cl.dm_peek(static_cast<CoreId>(p), 64)),
                   std::to_string(s.core[p].instret), std::to_string(s.core[p].halted_at)});
    }
    t.print(std::cout);

    std::cout << "\nInterconnect: " << s.im_bank_accesses << " IM bank accesses for "
              << s.total_ops() << " executed ops ("
              << s.ixbar.broadcast_riders
              << " fetches served by broadcast), DM conflicts stalled "
              << s.dxbar.denied << " requests.\n"
              << "Unused IM banks power gated: " << s.im_banks_gated << "/" << kImBanks << "\n";
    return 0;
}
