// Heart-rate monitor: the second application class the paper's intro
// motivates (on-line signal analysis rather than compression). Eight
// leads, one R-peak detector per core, majority-vote heart rate, and the
// power bill at the true real-time workload — plus a look at how this
// branch-heavy kernel treats the three instruction-memory organizations
// differently than the lockstep-friendly CS benchmark.
//
//   $ ./build/examples/rpeak_monitor
#include <algorithm>
#include <iostream>
#include <vector>

#include "app/ecg.hpp"
#include "app/rpeak.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "power/power_model.hpp"

using namespace ulpmc;

int main() {
    const app::EcgGenerator gen;
    const auto prog = app::build_rpeak_program();

    std::cout << "R-peak detection, " << prog.text.size()
              << "-instruction kernel, 8 leads in parallel\n\n";

    Table t({"arch", "cycles", "ops/cycle", "IM accesses", "fetch merges", "stalls"});
    std::vector<cluster::ClusterStats> stats;
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        cluster::Cluster cl(cluster::make_config(arch, app::RpeakLayout::dm_layout()), prog);
        for (unsigned p = 0; p < kNumCores; ++p) {
            const auto x = gen.block(p);
            for (std::size_t i = 0; i < x.size(); ++i)
                cl.dm_poke(static_cast<CoreId>(p),
                           static_cast<Addr>(app::RpeakLayout::kXBase + i),
                           static_cast<Word>(x[i]));
        }
        cl.run();
        const auto& s = cl.stats();
        stats.push_back(s);
        std::uint64_t stalls = 0;
        for (const auto& c : s.core) stalls += c.stall_cycles;
        t.add_row({cluster::arch_name(arch), format_count(s.cycles),
                   format_fixed(s.ops_per_cycle(), 3), format_count(s.im_bank_accesses),
                   format_count(s.ixbar.broadcast_riders), format_count(stalls)});
    }
    t.print(std::cout);
    std::cout << "\nNote the contrast with the CS benchmark: three data-dependent branches\n"
                 "per sample desynchronize the cores early, so ulpmc-bank pays "
              << format_percent(static_cast<double>(stats[2].cycles) /
                                    static_cast<double>(stats[1].cycles) -
                                1.0)
              << " extra cycles\nover ulpmc-int here (vs ~4% on CS+Huffman). The broadcast\n"
                 "still collapses most fetches while the cores run the common prefix.\n\n";

    // --- report detected heart rate per lead (from the ulpmc-bank run) ------
    cluster::Cluster cl(cluster::make_config(cluster::ArchKind::UlpmcBank,
                                             app::RpeakLayout::dm_layout()),
                        prog);
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto x = gen.block(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(app::RpeakLayout::kXBase + i),
                       static_cast<Word>(x[i]));
    }
    cl.run();

    Table hr({"lead", "peaks", "heart rate"});
    for (unsigned p = 0; p < kNumCores; ++p) {
        const Word n = cl.dm_peek(static_cast<CoreId>(p), app::RpeakLayout::kOutCount);
        std::string rate = "-";
        if (n >= 2) {
            const Word first = cl.dm_peek(static_cast<CoreId>(p), app::RpeakLayout::kOutIdx);
            const Word last = cl.dm_peek(static_cast<CoreId>(p),
                                         static_cast<Addr>(app::RpeakLayout::kOutIdx + n - 1));
            const double rr_s = (last - first) / (static_cast<double>(n - 1) *
                                                  app::kEcgSampleRateHz);
            rate = format_fixed(60.0 / rr_s, 1) + " bpm";
        }
        hr.add_row({"lead " + std::to_string(p), std::to_string(n), rate});
    }
    hr.print(std::cout);

    // --- the power bill ------------------------------------------------------
    const double block_period_s = 512.0 / 250.0;
    const double workload = static_cast<double>(stats[2].total_ops()) / block_period_s;
    const power::PowerModel model(cluster::ArchKind::UlpmcBank);
    const auto rates = power::EventRates::from_run(stats[2]);
    const auto rep = model.power_at(rates, workload);
    std::cout << "\nReal-time monitoring workload: " << format_si(workload, "Ops/s") << " -> "
              << format_si(rep.total, "W") << " on ulpmc-bank at " << format_fixed(rep.op.v, 2)
              << " V (a coin cell lasts years at this draw).\n";
    return 0;
}
