// TamaRISC toolchain explorer: assemble a source file (or the built-in
// demo), print the listing with round-trip disassembly, execute it on the
// functional ISS with a full instruction trace, and dump the final state.
//
//   $ ./build/examples/asm_explorer [program.asm] [--trace N]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/functional_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

using namespace ulpmc;

namespace {

const char* kDemo = R"(
; Demo: compute gcd(462, 1071) = 21 by repeated subtraction.
        .entry main
main:   movi r1, 462
        movi r2, 1071
gcd:    sub  r3, r1, r2     ; flags from r1 - r2
        bra  eq, done
        bra  lt, swap       ; r1 < r2
        mov  r1, r3         ; r1 -= r2
        bra  al, gcd
swap:   mov  r3, r1         ; exchange r1, r2
        mov  r1, r2
        mov  r2, r3
        bra  al, gcd
done:   movi r4, result
        mov  @r4, r1
        hlt
        .data
        .space 32
result: .word 0
)";

} // namespace

int main(int argc, char** argv) {
    std::string source = kDemo;
    std::string name = "<built-in demo>";
    std::uint64_t trace_limit = 40;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            trace_limit = std::stoull(argv[++i]);
        } else {
            std::ifstream in(arg);
            if (!in) {
                std::cerr << "cannot open " << arg << '\n';
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            source = ss.str();
            name = arg;
        }
    }

    isa::Program prog;
    try {
        prog = isa::assemble(source);
    } catch (const isa::AssemblyError& e) {
        std::cerr << name << ": " << e.what() << '\n';
        return 1;
    }

    std::cout << "== " << name << ": " << prog.text.size() << " instructions, "
              << prog.data.size() << " data words ==\n";
    for (std::size_t pc = 0; pc < prog.text.size(); ++pc) {
        std::printf("  %04zu  %06X  %s\n", pc, prog.text[pc],
                    isa::disassemble_word(prog.text[pc], static_cast<PAddr>(pc)).c_str());
    }

    std::cout << "\n== symbols ==\n";
    for (const auto& [sym_name, sym] : prog.symbols())
        std::cout << "  " << sym_name << " = " << sym.value
                  << (sym.space == isa::Symbol::Space::Text ? " (text)\n" : " (data)\n");

    std::cout << "\n== trace (first " << trace_limit << " instructions) ==\n";
    core::FlatMemory mem;
    mem.load(0, prog.data);
    core::FunctionalCore core(prog.text, mem);
    core.state().pc = prog.entry;
    core.set_tracer([&](const core::TraceEntry& e) {
        if (e.instret >= trace_limit) return;
        std::printf("  %6llu  pc=%04u  %-28s", static_cast<unsigned long long>(e.instret), e.pc,
                    isa::disassemble(e.in, e.pc).c_str());
        std::printf(" [%c%c%c%c]\n", e.after.flags.c ? 'C' : '-', e.after.flags.z ? 'Z' : '-',
                    e.after.flags.n ? 'N' : '-', e.after.flags.v ? 'V' : '-');
    });
    core.run(1'000'000);

    std::cout << "\n== final state (" << core.instret() << " instructions, "
              << core::trap_name(core.trap()) << ") ==\n";
    for (unsigned r = 0; r < kNumRegisters; ++r) {
        std::printf("  r%-2u = %5u (0x%04X)%s", r, core.state().regs[r], core.state().regs[r],
                    (r % 4 == 3) ? "\n" : "   ");
    }
    if (const auto result = prog.symbol("result"); result) {
        std::cout << "  result @" << result->value << " = "
                  << mem.peek(static_cast<Addr>(result->value)) << '\n';
    }
    return core.trap() == core::Trap::None ? 0 : 2;
}
