// Fault-injection walkthrough (DESIGN.md §9): three short demonstrations
// of the resilience stack on the proposed banked architecture.
//
//  1. A single-bit DM upset that silently corrupts the compressed output
//     with ECC off is corrected in-flight (and scrubbed) with ECC on.
//  2. The resilient streaming monitor survives a persistently-corrupted
//     lead: the struck block rolls back, the retry fails too, the lead is
//     dropped, and the remaining leads keep verifying bit-exact.
//  3. A miniature seeded campaign, reproducible bit-for-bit from its seed.
#include <iostream>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/stats.hpp"
#include "common/table.hpp"
#include "fault/campaign.hpp"
#include "sweep/sweep.hpp"

using namespace ulpmc;

namespace {

/// Finds a seed whose drawn strike is an SDC with ECC off (part 1 needs a
/// demonstrably dangerous particle, not a masked one).
fault::FaultSpec find_sdc_strike(const app::EcgBenchmark& bench, fault::CampaignConfig cfg,
                                 sweep::SweepRunner& pool, std::size_t& index) {
    cfg.ecc = false;
    cfg.kinds = fault::fault_bit(fault::FaultKind::DmBitFlip);
    const auto r = fault::run_campaign(bench, cluster::ArchKind::UlpmcBank, cfg, pool);
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
        if (r.runs[i].outcome == fault::Outcome::Sdc) {
            index = i;
            return r.runs[i].fault;
        }
    }
    std::cerr << "no SDC in " << cfg.injections << " strikes (unexpected)\n";
    std::exit(1);
}

} // namespace

int main() {
    const app::EcgBenchmark bench{};
    sweep::SweepRunner pool;
    fault::CampaignConfig cfg;
    cfg.seed = 7;
    cfg.injections = 64;

    std::cout << "== 1. One particle, with and without SEC-DED ==\n";
    std::size_t strike_idx = 0;
    const auto strike = find_sdc_strike(bench, cfg, pool, strike_idx);
    std::cout << "strike: " << strike.describe() << "\n";
    for (const bool ecc : {false, true}) {
        auto ccfg = cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
        ccfg.ecc_enabled = ecc;
        cluster::Cluster cl(ccfg, bench.program());
        for (unsigned p = 0; p < ccfg.cores; ++p) {
            const auto& x = bench.lead_samples(p);
            for (std::size_t i = 0; i < x.size(); ++i) {
                cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(bench.layout().x_base() + i),
                           static_cast<Word>(x[i]));
            }
        }
        fault::FaultInjector::run_with_fault(cl, strike, 2'000'000);
        const auto out_ok = [&] {
            for (unsigned p = 0; p < ccfg.cores; ++p) {
                const auto& g = bench.golden_bitstream(p);
                if (cl.dm_peek(static_cast<CoreId>(p), bench.layout().out_count()) !=
                    g.words.size()) {
                    return false;
                }
                for (std::size_t i = 0; i < g.words.size(); ++i) {
                    if (cl.dm_peek(static_cast<CoreId>(p),
                                   static_cast<Addr>(bench.layout().out_base() + i)) !=
                        g.words[i]) {
                        return false;
                    }
                }
            }
            return true;
        }();
        std::cout << "  ECC " << (ecc ? "on:  " : "off: ") << (out_ok ? "output bit-exact" : "SILENT DATA CORRUPTION")
                  << " (corrections: " << cl.stats().ecc_corrected() << ")\n";
        cluster::print_run_summary(std::cout, cl.stats());
    }

    std::cout << "\n== 2. Streaming monitor: rollback, then lead-drop ==\n";
    const app::StreamingBenchmark stream({.use_barrier = true}, 3);
    auto scfg = cluster::make_config(cluster::ArchKind::UlpmcBank, bench.layout().dm_layout());
    scfg.watchdog_cycles = 20'000;
    // A latched upset in lead 2's sample buffer: every attempt of block 1
    // re-hits it, so rollback cannot heal it and the lead is dropped.
    const auto persistent_hit = [&](cluster::Cluster& cl, unsigned block, unsigned) {
        if (block < 1) return;
        cl.run(500);
        cl.inject_dm_fault(2, static_cast<Addr>(stream.base().layout().x_base() + 17), 0x0040);
    };
    const auto ro = stream.run_resilient(scfg, persistent_hit);
    std::cout << "  blocks committed: " << ro.blocks << ", rollbacks: " << ro.rollbacks
              << ", leads dropped: " << ro.leads_dropped << "\n  leads alive:";
    for (std::size_t p = 0; p < ro.lead_alive.size(); ++p) {
        if (ro.lead_alive[p]) std::cout << " " << p;
    }
    std::cout << "\n  surviving leads verified: " << (ro.all_surviving_verified ? "yes" : "NO")
              << "\n";

    std::cout << "\n== 3. Miniature seeded campaign (reproducible: seed " << cfg.seed << ") ==\n";
    Table t({"#", "fault", "outcome"});
    fault::CampaignConfig mini = cfg;
    mini.injections = 10;
    mini.ecc = true;
    const auto r = fault::run_campaign(bench, cluster::ArchKind::UlpmcBank, mini, pool);
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
        t.add_row({std::to_string(i), r.runs[i].fault.describe(),
                   fault::outcome_name(r.runs[i].outcome)});
    }
    t.print(std::cout);
    std::cout << "coverage: " << format_percent(r.coverage(), 1)
              << " — rerun this example: the table is identical.\n";
    return 0;
}
