// Continuous monitoring: the node's real operating mode — block after
// block, indefinitely. Demonstrates the barrier extension re-establishing
// lockstep at every block boundary (watch the fetch-merge ratio), and the
// event trace showing the barrier protocol in action.
//
//   $ ./build/examples/streaming_monitor [blocks]
#include <cstdlib>
#include <iostream>

#include <vector>

#include "app/streaming.hpp"
#include "cluster/trace.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"

using namespace ulpmc;

int main(int argc, char** argv) {
    const unsigned blocks = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;

    std::cout << "Streaming " << blocks << " consecutive 512-sample blocks per lead\n\n";

    Table t({"config", "cycles/block", "fetch-merge ratio", "verified"});
    for (const bool barrier : {false, true}) {
        app::BenchmarkOptions opt;
        opt.use_barrier = barrier;
        const app::StreamingBenchmark stream(opt, blocks);
        const auto out = stream.run(cluster::ArchKind::UlpmcBank);
        t.add_row({barrier ? "ulpmc-bank + barrier (ext.)" : "ulpmc-bank, free-running",
                   format_fixed(out.cycles_per_block, 0),
                   format_percent(out.fetch_merge_ratio) + " (ideal 87.5%)",
                   out.verified ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\nBarrier protocol, first block boundary (event trace):\n";
    app::BenchmarkOptions opt;
    opt.use_barrier = true;
    const app::StreamingBenchmark stream(opt, 2);
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank,
                                    stream.base().layout().dm_layout());
    cfg.barrier_enabled = true;
    cluster::Cluster cl(cfg, stream.program());
    for (unsigned p = 0; p < kNumCores; ++p) {
        const auto& x = stream.base().lead_samples(p);
        for (std::size_t i = 0; i < x.size(); ++i)
            cl.dm_poke(static_cast<CoreId>(p),
                       static_cast<Addr>(stream.base().layout().x_base() + i),
                       static_cast<Word>(x[i]));
    }
    // A custom sink that keeps only the barrier protocol (the TraceSink
    // interface makes event filtering trivial).
    class BarrierLog final : public cluster::TraceSink {
    public:
        void on_event(const cluster::TraceEvent& e) override {
            if (e.kind == cluster::EventKind::BarrierArrive ||
                e.kind == cluster::EventKind::BarrierRelease)
                events.push_back(e);
        }
        std::vector<cluster::TraceEvent> events;
    } log;
    cl.set_trace(&log);
    cl.run();

    int shown = 0;
    for (const auto& e : log.events) {
        std::cout << "  " << cluster::RingTrace::render(e) << '\n';
        if (e.kind == cluster::EventKind::BarrierRelease && ++shown == 3) break;
    }
    std::cout << "\nThe cores arrive spread over several cycles (Huffman desync) and leave\n"
                 "in the same cycle -- lockstep restored for the next CS phase.\n";
    return 0;
}
