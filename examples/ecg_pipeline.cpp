// The paper's motivating scenario, end to end: an 8-lead wearable ECG
// node samples at 250 Hz, compresses every 512-sample block with CS,
// entropy-codes it with Huffman on the ulpmc-bank cluster, and the host
// (the "base station") decodes the received bitstream. The example then
// asks the power model what this real-time workload costs on each
// architecture — the numbers a system designer actually wants.
//
//   $ ./build/examples/ecg_pipeline
#include <iostream>

#include "app/benchmark.hpp"
#include "app/reconstruct.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/power_model.hpp"

using namespace ulpmc;

int main() {
    const app::EcgBenchmark bench{};

    std::cout << "8-lead ECG node: 250 Hz, 512-sample blocks, CS 50% + Huffman\n"
              << "Program: " << bench.program().text.size() << " instructions, CS matrix "
              << bench.matrix().bytes() << " B, Huffman LUTs 2x1024 B\n\n";

    // --- run the block on the proposed architecture -------------------------
    const auto out = bench.run(cluster::ArchKind::UlpmcBank);
    std::cout << "Cluster run: " << out.stats.cycles << " cycles, outputs "
              << (out.verified ? "VERIFIED bit-exact against the host pipeline"
                               : "MISMATCH (bug!)")
              << "\n";

    // --- base-station decode -------------------------------------------------
    std::size_t decoded_ok = 0;
    for (unsigned lead = 0; lead < app::kEcgLeads; ++lead) {
        const auto symbols =
            app::huffman_decode(bench.table(), out.bitstreams[lead], app::kCsOutputLen);
        if (symbols && *symbols == bench.golden_symbols(lead)) ++decoded_ok;
    }
    std::cout << "Host decode: " << decoded_ok << "/" << app::kEcgLeads
              << " lead bitstreams decoded to the exact symbol streams\n";
    std::cout << "Compression: " << format_fixed(out.bits_per_sample, 2)
              << " bits/sample (raw ADC: 16 bits/sample)\n";

    // Full receive chain: dequantize the transmitted symbols and run the
    // OMP/Haar compressed-sensing reconstruction (lead 0).
    {
        const auto y = app::dequantize_symbols(bench.golden_symbols(0));
        const auto recon = app::cs_reconstruct(bench.matrix(), y);
        std::cout << "Reconstruction (OMP, Haar basis): "
                  << format_fixed(app::prd_percent(bench.lead_samples(0), recon), 1)
                  << "% PRD on lead 0\n\n";
    }

    // --- what does real-time monitoring cost? --------------------------------
    // One block per lead every 512/250 s; the whole-cluster work per block
    // is out.stats.total_ops() operations.
    const double block_period_s = 512.0 / 250.0;
    const double workload = static_cast<double>(out.stats.total_ops()) / block_period_s;
    std::cout << "Real-time workload: " << format_si(workload, "Ops/s")
              << " (duty cycling between blocks)\n\n";

    Table t({"architecture", "supply", "clock", "power", "energy/day", "saving"});
    double p_ref = 0;
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        const auto dp = exp::characterize(arch, bench);
        const power::PowerModel model(arch);
        const auto rep = model.power_at(dp.rates, workload);
        if (arch == cluster::ArchKind::McRef) p_ref = rep.total;
        t.add_row({cluster::arch_name(arch), format_fixed(rep.op.v, 2) + " V",
                   format_si(rep.op.f_hz, "Hz"), format_si(rep.total, "W"),
                   format_si(rep.total * 86400.0, "J"),
                   arch == cluster::ArchKind::McRef ? "-"
                                                    : format_percent(1.0 - rep.total / p_ref)});
    }
    t.print(std::cout);

    std::cout << "\nAt this near-idle duty cycle the node is leakage-dominated: the\n"
                 "ulpmc-bank design's IM power gating is what extends battery life\n"
                 "(the paper's low-workload headline, Figs. 7/8).\n";
    return 0;
}
