// Design-space exploration: for a range of biosignal workloads — from a
// duty-cycled single-lead monitor to a saturated multi-biosignal hub —
// pick the best architecture and operating point. Reproduces the paper's
// engineering takeaway: ulpmc-bank wins everywhere, ulpmc-int only while
// dynamic power dominates, and voltage scaling stops at the floor.
//
//   $ ./build/examples/design_space
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"

using namespace ulpmc;

namespace {

struct Scenario {
    const char* name;
    double workload; // Ops/s
};

} // namespace

int main() {
    const app::EcgBenchmark bench{};
    const auto designs = exp::characterize_all(bench);

    const std::vector<Scenario> scenarios = {
        {"pulse oximetry, duty-cycled", 5e3},
        {"single-lead ECG R-peak", 50e3},
        {"3-lead ECG delineation", 500e3},
        {"8-lead ECG CS+Huffman (this paper)", 2.7e5},
        {"EEG seizure detection, 32 ch", 5e6},
        {"multi-biosignal fusion", 50e6},
        {"peak: imaging burst", 500e6},
    };

    Table t({"scenario", "workload", "best arch", "supply", "clock", "power",
             "vs worst arch"});
    for (const auto& sc : scenarios) {
        double best_p = 1e9;
        double worst_p = 0;
        std::size_t best_i = 0;
        std::vector<double> totals;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            const power::PowerModel model(designs[i].arch);
            if (sc.workload > model.max_throughput(designs[i].rates)) {
                totals.push_back(-1);
                continue;
            }
            const double p = model.power_at(designs[i].rates, sc.workload).total;
            totals.push_back(p);
            if (p < best_p) {
                best_p = p;
                best_i = i;
            }
            worst_p = std::max(worst_p, p);
        }
        const power::PowerModel model(designs[best_i].arch);
        const auto rep = model.power_at(designs[best_i].rates, sc.workload);
        t.add_row({sc.name, format_si(sc.workload, "Ops/s"),
                   cluster::arch_name(designs[best_i].arch), format_fixed(rep.op.v, 2) + " V",
                   format_si(rep.op.f_hz, "Hz"), format_si(best_p, "W"),
                   format_percent(1.0 - best_p / worst_p)});
    }
    t.print(std::cout);

    // Where does ulpmc-int stop being better than mc-ref? (Fig. 7's
    // low-workload crossover story.)
    const power::PowerModel mref(cluster::ArchKind::McRef);
    const power::PowerModel mint(cluster::ArchKind::UlpmcInt);
    double lo = 1e2;
    double hi = 1e6;
    for (int i = 0; i < 60; ++i) {
        const double mid = std::sqrt(lo * hi);
        const double d = mint.power_at(designs[1].rates, mid).total -
                         mref.power_at(designs[0].rates, mid).total;
        (d > 0 ? lo : hi) = mid;
    }
    std::cout << "\nulpmc-int's dynamic-power advantage dies below ~" << format_si(hi, "Ops/s")
              << " (leakage parity with mc-ref; the paper places this near 5 kOps/s).\n"
              << "ulpmc-bank never crosses: gated IM banks cut leakage by "
              << format_percent(0.388) << ".\n";
    return 0;
}
