// ulpmc-farm: fault-tolerant fleet farm supervisor (DESIGN.md §13).
//
// Splits a fleet over N shard worker processes (ulpmc-fleet, one per
// shard), watches each worker's journal for heartbeat/progress frames,
// recovers hung or crashed workers (SIGTERM -> SIGKILL on liveness
// timeout, restart with truncated exponential backoff + jitter and
// --resume so no completed device is re-simulated), and merges the shard
// stores in-process into the exact JSON + ULPF artifacts an unsharded
// run would emit. A seeded chaos mode kills/stalls the farm's own
// workers at deterministic progress points to prove all of the above.
//
// Usage:
//   ulpmc-farm --timeline FILE --fleet-bin PATH [options]
//     --timeline FILE   phase script (required)
//     --fleet-bin PATH  ulpmc-fleet worker binary (required)
//     --devices N       GLOBAL fleet size (default 1000)
//     --seed N          fleet master seed (default 1)
//     --cohorts N       workload cohorts (default 8)
//     --days D          per-device lifetime (default: one pass)
//     --baseline F      baseline-policy fraction (default 0.25)
//     --engine E        reference|fast|trace|batched (default trace)
//     --workers N       shard worker processes (default 4)
//     --worker-threads N  threads per worker, 0 = hardware (default 0)
//     --dir DIR         scratch dir for shard_K.{jnl,json,ulpf,log} (default farm)
//     --json FILE       merged fleet JSON (byte-identical to unsharded)
//     --store FILE      merged ULPF store (byte-identical to unsharded)
//     --report FILE     supervision report JSON ('-' = stdout)
//     --heartbeat S     worker heartbeat period (default 0.5)
//     --timeout S       no-journal-growth window before SIGTERM (default 10)
//     --grace S         SIGTERM -> SIGKILL escalation grace (default 2)
//     --backoff BASE/MAX  restart backoff bounds in seconds (default 0.25/8)
//     --retries N       restarts allowed per shard (default 8)
//     --chaos SPEC      kills=K[,stalls=S][,seed=N] — SIGKILL/SIGSTOP own
//                       workers at seeded progress points
//
// Exit codes: 0 complete (merged artifacts written), 2 bad usage,
// 3 partial failure (a shard died after exhausting its retry budget; the
// summary names it), 1 internal/merge error.
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "common/atomic_file.hpp"
#include "fleet/farm.hpp"
#include "fleet/store.hpp"

namespace {

void usage(std::ostream& os) {
    os << "usage: ulpmc-farm --timeline FILE --fleet-bin PATH [--devices N] [--seed N]\n"
          "                  [--cohorts N] [--days D] [--baseline F] [--engine E]\n"
          "                  [--workers N] [--worker-threads N] [--dir DIR]\n"
          "                  [--json FILE] [--store FILE] [--report FILE]\n"
          "                  [--heartbeat S] [--timeout S] [--grace S]\n"
          "                  [--backoff BASE/MAX] [--retries N]\n"
          "                  [--chaos kills=K[,stalls=S][,seed=N]]\n";
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

/// kills=K[,stalls=S][,seed=N], any order, each key at most once.
bool parse_chaos(const std::string& spec, ulpmc::fleet::FarmOptions& opt) {
    std::set<std::string> keys;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string part =
            spec.substr(start, comma == std::string::npos ? spec.size() - start : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (part.empty()) return false;
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos) return false;
        const std::string key = part.substr(0, eq);
        if (!keys.insert(key).second) return false;
        std::uint64_t v = 0;
        if (!parse_u64(part.substr(eq + 1), v)) return false;
        if (key == "kills") {
            opt.chaos_kills = static_cast<unsigned>(v);
        } else if (key == "stalls") {
            opt.chaos_stalls = static_cast<unsigned>(v);
        } else if (key == "seed") {
            opt.chaos_seed = v;
        } else {
            return false;
        }
    }
    return keys.count("kills") > 0;
}

} // namespace

int main(int argc, char** argv) {
    ulpmc::fleet::FarmOptions opt;
    std::string report_path;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        auto value = [&](const char* name) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << name << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--timeline") {
            opt.timeline_path = value("--timeline");
        } else if (arg == "--fleet-bin") {
            opt.fleet_bin = value("--fleet-bin");
        } else if (arg == "--devices") {
            if (!parse_u64(value("--devices"), opt.fleet.devices) || opt.fleet.devices < 1) {
                std::cerr << "--devices: expected a positive count\n";
                return 2;
            }
        } else if (arg == "--seed") {
            if (!parse_u64(value("--seed"), opt.fleet.seed)) {
                std::cerr << "--seed: not a number\n";
                return 2;
            }
        } else if (arg == "--cohorts") {
            std::uint64_t c = 0;
            if (!parse_u64(value("--cohorts"), c) || c < 1 || c > 4096) {
                std::cerr << "--cohorts: expected a count in [1, 4096]\n";
                return 2;
            }
            opt.fleet.cohorts = static_cast<unsigned>(c);
        } else if (arg == "--days") {
            if (!parse_double(value("--days"), opt.fleet.days) || opt.fleet.days <= 0) {
                std::cerr << "--days: expected a positive number\n";
                return 2;
            }
        } else if (arg == "--baseline") {
            if (!parse_double(value("--baseline"), opt.fleet.baseline_fraction) ||
                opt.fleet.baseline_fraction < 0 || opt.fleet.baseline_fraction > 1) {
                std::cerr << "--baseline: expected a fraction in [0, 1]\n";
                return 2;
            }
        } else if (arg == "--engine") {
            if (!ulpmc::cluster::parse_engine(value("--engine"), opt.fleet.engine)) {
                std::cerr << "--engine: unknown engine (reference|fast|trace|batched)\n";
                return 2;
            }
        } else if (arg == "--workers") {
            std::uint64_t w = 0;
            if (!parse_u64(value("--workers"), w) || w < 1 || w > 256) {
                std::cerr << "--workers: expected a count in [1, 256]\n";
                return 2;
            }
            opt.workers = static_cast<unsigned>(w);
        } else if (arg == "--worker-threads") {
            std::uint64_t t = 0;
            if (!parse_u64(value("--worker-threads"), t) || t > 1024) {
                std::cerr << "--worker-threads: expected a count in [0, 1024]\n";
                return 2;
            }
            opt.worker_threads = static_cast<unsigned>(t);
        } else if (arg == "--dir") {
            opt.dir = value("--dir");
        } else if (arg == "--json") {
            opt.json_path = value("--json");
        } else if (arg == "--store") {
            opt.store_path = value("--store");
        } else if (arg == "--report") {
            report_path = value("--report");
        } else if (arg == "--heartbeat") {
            if (!parse_double(value("--heartbeat"), opt.heartbeat_s) || opt.heartbeat_s <= 0) {
                std::cerr << "--heartbeat: expected a positive period in seconds\n";
                return 2;
            }
        } else if (arg == "--timeout") {
            if (!parse_double(value("--timeout"), opt.timeout_s) || opt.timeout_s <= 0) {
                std::cerr << "--timeout: expected a positive window in seconds\n";
                return 2;
            }
        } else if (arg == "--grace") {
            if (!parse_double(value("--grace"), opt.term_grace_s) || opt.term_grace_s < 0) {
                std::cerr << "--grace: expected a non-negative window in seconds\n";
                return 2;
            }
        } else if (arg == "--backoff") {
            const std::string v = value("--backoff");
            const auto slash = v.find('/');
            if (slash == std::string::npos ||
                !parse_double(v.substr(0, slash), opt.backoff_base_s) ||
                !parse_double(v.substr(slash + 1), opt.backoff_max_s) ||
                opt.backoff_base_s <= 0 || opt.backoff_max_s < opt.backoff_base_s) {
                std::cerr << "--backoff: expected BASE/MAX seconds with 0 < BASE <= MAX\n";
                return 2;
            }
        } else if (arg == "--retries") {
            std::uint64_t r = 0;
            if (!parse_u64(value("--retries"), r) || r > 10000) {
                std::cerr << "--retries: expected a count in [0, 10000]\n";
                return 2;
            }
            opt.retries = static_cast<unsigned>(r);
        } else if (arg == "--chaos") {
            if (!parse_chaos(value("--chaos"), opt)) {
                std::cerr << "--chaos: expected kills=K[,stalls=S][,seed=N]\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << arg << ": unknown option\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (opt.timeline_path.empty() || opt.fleet_bin.empty()) {
        std::cerr << "--timeline and --fleet-bin are required\n";
        usage(std::cerr);
        return 2;
    }

    try {
        ulpmc::fleet::Farm farm(opt, &std::cerr);
        const ulpmc::fleet::FarmReport rep = farm.run();
        ulpmc::fleet::print_farm_summary(std::cout, opt, rep);
        if (!report_path.empty()) {
            if (report_path == "-") {
                ulpmc::fleet::write_farm_report(std::cout, opt, rep);
            } else {
                std::ostringstream out;
                ulpmc::fleet::write_farm_report(out, opt, rep);
                ulpmc::write_file_atomic(report_path, out.str());
            }
        }
        return rep.complete ? 0 : 3;
    } catch (const ulpmc::fleet::FarmError& e) {
        std::cerr << e.what() << "\n";
        return 2;
    } catch (const ulpmc::fleet::FleetStoreError& e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const ulpmc::AtomicFileError& e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
