// ulpmc-life: device lifetime scenario driver (DESIGN.md §12).
//
// Walks a scripted timeline (scenario/timeline.hpp) with the lifetime
// engine and reports what the device lived through: per-phase energy by
// subsystem, samples delivered/degraded/lost, SDC count and the battery
// trace. One timeline plus one seed fully determines the run — the JSON
// is byte-identical across simulator engine tiers and thread counts.
//
// Usage:
//   ulpmc-life --timeline FILE [options]
//     --timeline FILE   phase script (required)
//     --seed N          campaign seed (default 1)
//     --engine E        reference|fast|trace|batched (default trace)
//     --days D          simulate D days, cycling the script (default: one pass)
//     --policy P        ladder|baseline|both (default both)
//     --threads N       worker threads, 0 = hardware (default 0)
//     --json FILE       write the report JSON to FILE ('-' = stdout)
//
// Exit codes: 0 success, 2 bad usage (malformed, duplicate or
// inconsistent options, unreadable or corrupt timeline).
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

namespace {

void usage(std::ostream& os) {
    os << "usage: ulpmc-life --timeline FILE [--seed N] [--engine E] [--days D]\n"
          "                  [--policy ladder|baseline|both] [--threads N] [--json FILE]\n";
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

} // namespace

int main(int argc, char** argv) {
    using ulpmc::scenario::Policy;

    std::string timeline_path;
    std::string json_path;
    std::uint64_t seed = 1;
    std::uint64_t threads = 0;
    double days = 0;
    ulpmc::cluster::SimEngine engine = ulpmc::cluster::SimEngine::Trace;
    bool ladder = true, baseline = true;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        auto value = [&](const char* name) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << name << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--timeline") {
            timeline_path = value("--timeline");
        } else if (arg == "--seed") {
            if (!parse_u64(value("--seed"), seed)) {
                std::cerr << "--seed: not a number\n";
                return 2;
            }
        } else if (arg == "--threads") {
            if (!parse_u64(value("--threads"), threads)) {
                std::cerr << "--threads: not a number\n";
                return 2;
            }
        } else if (arg == "--days") {
            if (!parse_double(value("--days"), days) || days <= 0) {
                std::cerr << "--days: expected a positive number\n";
                return 2;
            }
        } else if (arg == "--engine") {
            if (!ulpmc::cluster::parse_engine(value("--engine"), engine)) {
                std::cerr << "--engine: unknown engine (reference|fast|trace|batched)\n";
                return 2;
            }
        } else if (arg == "--policy") {
            const std::string p = value("--policy");
            if (p == "ladder") {
                baseline = false;
            } else if (p == "baseline") {
                ladder = false;
            } else if (p != "both") {
                std::cerr << "--policy: expected ladder, baseline or both\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << arg << ": unknown option\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (timeline_path.empty()) {
        std::cerr << "--timeline is required\n";
        usage(std::cerr);
        return 2;
    }

    ulpmc::scenario::Timeline tl;
    try {
        tl = ulpmc::scenario::load_timeline(timeline_path);
    } catch (const ulpmc::scenario::TimelineError& e) {
        std::cerr << timeline_path << ": " << e.what() << "\n";
        return 2;
    }

    ulpmc::sweep::SweepRunner pool(static_cast<unsigned>(threads));
    std::vector<ulpmc::scenario::LifetimeReport> runs;
    for (const Policy policy : {Policy::Ladder, Policy::Baseline}) {
        if (policy == Policy::Ladder && !ladder) continue;
        if (policy == Policy::Baseline && !baseline) continue;
        ulpmc::scenario::DeviceConfig dc;
        dc.seed = seed;
        dc.engine = engine;
        dc.policy = policy;
        dc.max_days = days;
        ulpmc::scenario::LifetimeEngine eng(tl, dc);
        runs.push_back(eng.run(pool));
        ulpmc::scenario::print_summary(std::cout, runs.back());
        std::cout << "\n";
    }

    if (!json_path.empty()) {
        // The timeline's basename identifies the script in the JSON.
        std::string name = timeline_path;
        if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
            name = name.substr(slash + 1);
        if (json_path == "-") {
            ulpmc::scenario::write_json(std::cout, name, runs);
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << json_path << ": cannot open for writing\n";
                return 2;
            }
            ulpmc::scenario::write_json(out, name, runs);
        }
    }
    return 0;
}
