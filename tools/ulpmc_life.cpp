// ulpmc-life: device lifetime scenario driver (DESIGN.md §12).
//
// Walks a scripted timeline (scenario/timeline.hpp) with the lifetime
// engine and reports what the device lived through: per-phase energy by
// subsystem, samples delivered/degraded/lost, SDC count and the battery
// trace. One timeline plus one seed fully determines the run — the JSON
// is byte-identical across simulator engine tiers and thread counts.
//
// Usage:
//   ulpmc-life --timeline FILE [options]
//     --timeline FILE   phase script (required)
//     --seed N          campaign seed (default 1)
//     --engine E        reference|fast|trace|batched (default trace)
//     --days D          simulate D days, cycling the script (default: one pass)
//     --policy P        ladder|baseline|both (default both)
//     --threads N       worker threads, 0 = hardware (default 0)
//     --json FILE       write the report JSON to FILE ('-' = stdout)
//     --journal FILE    append one durable frame per simulated chunk to FILE
//     --resume FILE     replay FILE's intact frames (restarting each policy
//                       from its last journaled chunk boundary), then continue
//                       journaling to it (missing file: fresh run). The
//                       journal binds to the run's options and timeline
//                       bytes; a mismatch is a usage error.
//
// SIGTERM/SIGINT preempt gracefully: the in-flight chunk finishes and its
// frame reaches the journal, then the run exits 3 without writing the
// (incomplete) JSON — a later --resume continues from the journaled
// chunk boundary.
//
// Exit codes: 0 success, 2 bad usage (malformed, duplicate or
// inconsistent options, unreadable or corrupt timeline/journal),
// 3 preempted by SIGTERM/SIGINT (journal flushed, artifacts unwritten).
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/crc32.hpp"
#include "common/journal.hpp"
#include "common/serial.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

namespace {

/// Journal frame kinds ("META" / "CHNK" in ASCII).
constexpr std::uint32_t kMetaFrame = 0x4154454Du;
constexpr std::uint32_t kChunkFrame = 0x4B4E4843u;

/// Set by the SIGTERM/SIGINT handler; the chunk hook polls it and throws
/// Preempted so the run stops at a journaled chunk boundary and exits 3.
volatile std::sig_atomic_t g_preempt = 0;

struct Preempted {};

void on_preempt_signal(int) { g_preempt = 1; }

void usage(std::ostream& os) {
    os << "usage: ulpmc-life --timeline FILE [--seed N] [--engine E] [--days D]\n"
          "                  [--policy ladder|baseline|both] [--threads N] [--json FILE]\n"
          "                  [--journal FILE | --resume FILE]\n";
}

bool file_crc32(const std::string& path, std::uint32_t& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();
    out = ulpmc::crc32(bytes.data(), bytes.size());
    return true;
}

/// Everything a journaled chunk state depends on (`threads` deliberately
/// absent: results are thread-count-independent by construction).
std::vector<std::uint8_t> meta_payload(std::uint64_t seed, double days,
                                       ulpmc::cluster::SimEngine engine, bool ladder,
                                       bool baseline, std::uint32_t timeline_crc) {
    std::vector<std::uint8_t> m;
    ulpmc::put_raw(m, seed);
    ulpmc::put_f64(m, days);
    ulpmc::put_raw(m, static_cast<std::uint8_t>(engine));
    ulpmc::put_raw(m, static_cast<std::uint8_t>(ladder ? 1 : 0));
    ulpmc::put_raw(m, static_cast<std::uint8_t>(baseline ? 1 : 0));
    ulpmc::put_raw(m, timeline_crc);
    return m;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

} // namespace

int main(int argc, char** argv) {
    using ulpmc::scenario::Policy;

    std::string timeline_path;
    std::string json_path;
    std::string journal_path;
    bool resume = false;
    std::uint64_t seed = 1;
    std::uint64_t threads = 0;
    double days = 0;
    ulpmc::cluster::SimEngine engine = ulpmc::cluster::SimEngine::Trace;
    bool ladder = true, baseline = true;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        auto value = [&](const char* name) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << name << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--timeline") {
            timeline_path = value("--timeline");
        } else if (arg == "--seed") {
            if (!parse_u64(value("--seed"), seed)) {
                std::cerr << "--seed: not a number\n";
                return 2;
            }
        } else if (arg == "--threads") {
            if (!parse_u64(value("--threads"), threads)) {
                std::cerr << "--threads: not a number\n";
                return 2;
            }
        } else if (arg == "--days") {
            if (!parse_double(value("--days"), days) || days <= 0) {
                std::cerr << "--days: expected a positive number\n";
                return 2;
            }
        } else if (arg == "--engine") {
            if (!ulpmc::cluster::parse_engine(value("--engine"), engine)) {
                std::cerr << "--engine: unknown engine (reference|fast|trace|batched)\n";
                return 2;
            }
        } else if (arg == "--policy") {
            const std::string p = value("--policy");
            if (p == "ladder") {
                baseline = false;
            } else if (p == "baseline") {
                ladder = false;
            } else if (p != "both") {
                std::cerr << "--policy: expected ladder, baseline or both\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--journal") {
            journal_path = value("--journal");
        } else if (arg == "--resume") {
            journal_path = value("--resume");
            resume = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << arg << ": unknown option\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (timeline_path.empty()) {
        std::cerr << "--timeline is required\n";
        usage(std::cerr);
        return 2;
    }
    if (seen.count("--journal") && seen.count("--resume")) {
        std::cerr << "--journal and --resume are mutually exclusive "
                     "(--resume already journals to its file)\n";
        return 2;
    }

    ulpmc::scenario::Timeline tl;
    try {
        tl = ulpmc::scenario::load_timeline(timeline_path);
    } catch (const ulpmc::scenario::TimelineError& e) {
        std::cerr << timeline_path << ": " << e.what() << "\n";
        return 2;
    }

    // ---- durable progress journal (DESIGN.md §9.6) ---------------------
    // One frame per simulated chunk: [u8 policy][engine boundary state].
    // Resume restarts each policy from its LAST intact chunk frame.
    std::unique_ptr<ulpmc::JournalWriter> journal;
    std::vector<std::uint8_t> replay_state[2]; // indexed by Policy
    if (!journal_path.empty()) {
        std::uint32_t tl_crc = 0;
        if (!file_crc32(timeline_path, tl_crc)) {
            std::cerr << timeline_path << ": cannot re-read for journal binding\n";
            return 2;
        }
        const std::vector<std::uint8_t> meta =
            meta_payload(seed, days, engine, ladder, baseline, tl_crc);
        std::uint64_t keep = 0;
        bool have_meta = false;
        if (resume) {
            ulpmc::JournalContents jc;
            bool exists = true;
            try {
                jc = ulpmc::read_journal(journal_path);
            } catch (const ulpmc::JournalError&) {
                exists = false;
                std::cerr << "note: " << journal_path << ": no journal yet, starting fresh\n";
            }
            if (exists && !jc.frames.empty()) {
                if (jc.frames[0].kind != kMetaFrame || jc.frames[0].payload != meta) {
                    std::cerr << journal_path
                              << ": journal was written by a different run "
                                 "(options or timeline changed); refusing to resume\n";
                    return 2;
                }
                have_meta = true;
                std::uint64_t skipped = 0;
                for (std::size_t f = 1; f < jc.frames.size(); ++f) {
                    const ulpmc::JournalFrame& fr = jc.frames[f];
                    if (fr.kind != kChunkFrame) {
                        // Forward compatibility: frames of a kind this
                        // binary does not know carry no replay state for
                        // it — skip them rather than refusing the journal.
                        ++skipped;
                        continue;
                    }
                    if (fr.payload.size() < 2 || fr.payload[0] > 1) {
                        std::cerr << journal_path << ": frame " << f
                                  << ": malformed chunk payload; refusing to resume\n";
                        return 2;
                    }
                    replay_state[fr.payload[0]].assign(fr.payload.begin() + 1,
                                                       fr.payload.end());
                }
                keep = jc.clean_bytes;
                if (jc.torn_tail)
                    std::cerr << "note: " << journal_path
                              << ": dropping torn frame after " << keep << " bytes\n";
                if (skipped > 0)
                    std::cerr << "note: " << journal_path << ": skipping " << skipped
                              << " frame(s) of unknown kind (newer writer?)\n";
            }
        }
        try {
            journal = std::make_unique<ulpmc::JournalWriter>(journal_path, keep);
            if (!have_meta) journal->append(kMetaFrame, meta);
        } catch (const ulpmc::JournalError& e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    std::signal(SIGTERM, on_preempt_signal);
    std::signal(SIGINT, on_preempt_signal);
    ulpmc::sweep::SweepRunner pool(static_cast<unsigned>(threads));
    std::vector<ulpmc::scenario::LifetimeReport> runs;
    for (const Policy policy : {Policy::Ladder, Policy::Baseline}) {
        if (policy == Policy::Ladder && !ladder) continue;
        if (policy == Policy::Baseline && !baseline) continue;
        ulpmc::scenario::DeviceConfig dc;
        dc.seed = seed;
        dc.engine = engine;
        dc.policy = policy;
        dc.max_days = days;
        ulpmc::scenario::LifetimeEngine eng(tl, dc);
        ulpmc::scenario::LifeResume hooks;
        const auto pol = static_cast<std::uint8_t>(policy);
        if (journal) hooks.state = replay_state[pol];
        // The chunk hook is always set: it is both the journaling point
        // and the graceful-preemption poll (after the in-flight chunk's
        // frame is durable, never before).
        hooks.on_chunk = [&journal, pol](const std::vector<std::uint8_t>& state) {
            if (journal) {
                std::vector<std::uint8_t> p;
                p.reserve(1 + state.size());
                p.push_back(pol);
                p.insert(p.end(), state.begin(), state.end());
                journal->append(kChunkFrame, p);
            }
            if (g_preempt) throw Preempted{};
        };
        try {
            runs.push_back(eng.run(pool, hooks));
        } catch (const Preempted&) {
            if (journal)
                std::cerr << "preempted at a journaled chunk boundary; "
                             "resume to continue\n";
            else
                std::cerr << "preempted (no journal: progress not retained)\n";
            return 3;
        }
        ulpmc::scenario::print_summary(std::cout, runs.back());
        std::cout << "\n";
    }

    if (!json_path.empty()) {
        // The timeline's basename identifies the script in the JSON.
        std::string name = timeline_path;
        if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
            name = name.substr(slash + 1);
        if (json_path == "-") {
            ulpmc::scenario::write_json(std::cout, name, runs);
        } else {
            // Rendered in memory, published via fsync+rename: a killed run
            // never leaves a truncated artifact for a CI gate to misread.
            std::ostringstream out;
            ulpmc::scenario::write_json(out, name, runs);
            try {
                ulpmc::write_file_atomic(json_path, out.str());
            } catch (const ulpmc::AtomicFileError& e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        }
    }
    return 0;
}
