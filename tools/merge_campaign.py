#!/usr/bin/env python3
"""Merge sharded fault-campaign JSON artifacts back into one.

ext_fault_campaign --shard K/N runs the global injection indices congruent
to K mod N; every shard emits the same campaign list with shard-local
injection/outcome counts. Because the per-injection seed is derived from
the GLOBAL index, summing the shards reproduces the unsharded campaign
exactly — this script verifies that all per-campaign metadata agrees,
sums the counts, recomputes coverage, and emits a file byte-identical to
an unsharded run with the same seed and total injections.

Usage: merge_campaign.py SHARD.json [SHARD.json ...] -o MERGED.json
"""

import argparse
import json
import sys

# Keys that must be identical across shards for a campaign to be mergeable.
META_KEYS = (
    "workload",
    "policy",
    "arch",
    "ecc",
    "protection",
    "checkpoint",
    "burst_len",
    "reg_burst",
    "seed",
    "clean_cycles",
    "energy_per_op",
    "cores",
)

# Per-shard totals that sum across shards (adaptive-campaign artifacts).
SUM_KEYS = ("strikes", "checkpoints", "reexec_cycles", "interval_updates")

# Mirrors power::cal — overhead_energy is recomputed from the merged
# integer totals with the bench's own constants and expression, which is
# what keeps the merged artifact byte-identical to an unsharded run.
CHECKPOINT_WORDS_PER_CORE = 18.0
CHECKPOINT_WORD_ENERGY = 32.0e-12
CORE_ENERGY_PER_OP = 22.5e-12


def load(path):
    # parse_float=str keeps energy_per_op exactly as the C++ bench printed
    # it, so the merged file reproduces those bytes verbatim. A missing or
    # mangled shard must fail with a diagnosis, not a traceback.
    try:
        with open(path) as f:
            return json.load(f, parse_float=str)
    except OSError as e:
        sys.exit(f"{path}: cannot read: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e}")


def fmt_number(v):
    # Recomputed floats are rendered like C++'s default ostream (6
    # significant digits, %g): that is what makes the merged artifact
    # byte-identical to an unsharded run.
    if isinstance(v, str):
        return v
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return "%g" % v
    return str(v)


def merge(shards):
    campaigns = None
    for path, doc in shards:
        if not isinstance(doc, dict) or not isinstance(doc.get("campaigns"), list):
            sys.exit(f"{path}: not a campaign artifact (no 'campaigns' list)")
        for i, c in enumerate(doc["campaigns"]):
            if (
                not isinstance(c, dict)
                or not isinstance(c.get("outcomes"), dict)
                or not isinstance(c.get("injections"), int)
            ):
                sys.exit(f"{path}: campaign #{i} lacks 'outcomes'/'injections'")
        if campaigns is None:
            campaigns = [dict(c) for c in doc["campaigns"]]
            continue
        if len(doc["campaigns"]) != len(campaigns):
            sys.exit(f"{path}: campaign count differs from first shard")
        for merged, c in zip(campaigns, doc["campaigns"]):
            for k in META_KEYS:
                if merged.get(k) != c.get(k):
                    sys.exit(
                        f"{path}: campaign metadata mismatch on '{k}' "
                        f"({merged.get(k)!r} vs {c.get(k)!r})"
                    )
            merged["injections"] += c["injections"]
            for k in SUM_KEYS:
                if k in merged:
                    merged[k] += c[k]
            for name, n in c["outcomes"].items():
                merged["outcomes"][name] += n
    for c in campaigns:
        if sum(c["outcomes"].values()) != c["injections"]:
            sys.exit("outcome counts do not sum to injections after merge")
        sdc = c["outcomes"].get("SDC", 0)
        c["coverage"] = (
            1.0 if c["injections"] == 0 else 1.0 - sdc / c["injections"]
        )
        if "overhead_energy" in c:
            cores = float(c["cores"])
            save = cores * CHECKPOINT_WORDS_PER_CORE * CHECKPOINT_WORD_ENERGY
            cycle = cores * CORE_ENERGY_PER_OP
            c["overhead_energy"] = (
                float(c["checkpoints"]) * save + float(c["reexec_cycles"]) * cycle
            )
    return campaigns


def render(campaigns):
    # Mirrors ext_fault_campaign's / ext_fault_adaptive's write_json (no
    # shard key) byte for byte.
    out = ["{", '  "campaigns": [']
    for i, c in enumerate(campaigns):
        outcomes = ", ".join(
            f'"{name}": {n}' for name, n in c["outcomes"].items()
        )
        policy = f'"policy": "{c["policy"]}", ' if "policy" in c else ""
        extra = ""
        if "overhead_energy" in c:
            extra = (
                f'\n     "cores": {c["cores"]}, "strikes": {c["strikes"]}, '
                f'"checkpoints": {c["checkpoints"]}, '
                f'"reexec_cycles": {c["reexec_cycles"]}, '
                f'"interval_updates": {c["interval_updates"]}, '
                f'"overhead_energy": {fmt_number(c["overhead_energy"])},'
            )
        line = (
            f'    {{"workload": "{c["workload"]}", {policy}"arch": "{c["arch"]}", '
            f'"ecc": {fmt_number(c["ecc"])}, '
            f'"protection": "{c["protection"]}", '
            f'"checkpoint": {fmt_number(c["checkpoint"])}, '
            f'"burst_len": {c["burst_len"]}, "reg_burst": {c["reg_burst"]}, '
            f'"seed": {c["seed"]}, "injections": {c["injections"]}, '
            f'"clean_cycles": {c["clean_cycles"]}, '
            f'"energy_per_op": {fmt_number(c["energy_per_op"])},{extra}\n'
            f'     "outcomes": {{{outcomes}}}, '
            f'"coverage": {fmt_number(c["coverage"])}}}'
            + ("," if i + 1 < len(campaigns) else "")
        )
        out.append(line)
    out.append("  ]")
    out.append("}")
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("shards", nargs="+", help="per-shard JSON artifacts")
    ap.add_argument("-o", "--output", required=True, help="merged JSON path")
    args = ap.parse_args()

    docs = [(p, load(p)) for p in args.shards]
    seen = set()
    for path, doc in docs:
        shard = doc.get("shard")
        if len(docs) > 1 and shard is None:
            sys.exit(f"{path}: missing 'shard' key in a multi-shard merge")
        if shard in seen:
            sys.exit(f"{path}: duplicate shard {shard}")
        seen.add(shard)

    campaigns = merge(docs)
    with open(args.output, "w") as f:
        f.write(render(campaigns))
    print(f"merged {len(docs)} shard(s), {len(campaigns)} campaigns -> {args.output}")


if __name__ == "__main__":
    main()
