#!/usr/bin/env python3
"""Gate the fleet bench against the committed baseline.

Usage: check_fleet.py BASELINE.json CURRENT.json [--min-speedup X]

Both files are artifacts from `ext_fleet --json`. The artifact has two
parts with different contracts:

  * "fleet" and "aggregate" are DETERMINISTIC — a pure function of the
    timeline and options, byte-identical across engine tiers, thread
    counts and shard splits. The gate compares them for EXACT equality
    (floats compared as their printed strings): any drift is a
    behavioral change in the simulator, not noise.
  * "throughput" is HOST-DEPENDENT (wall clocks). It is never compared
    against the baseline; the gate only requires the CURRENT run's
    speedup over the naive per-device loop to clear --min-speedup
    (default 10), the fleet layer's reason to exist.

One semantic invariant is also enforced on the current artifact: the
ladder slice must ship zero silently-corrupted blocks (verified blocks
either roll back or trap — SDC is the baseline arm's failure mode).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            # parse_float=str: deterministic floats compare as the exact
            # bytes the C++ writer printed.
            doc = json.load(f, parse_float=str)
    except OSError as e:
        sys.exit(f"{path}: cannot read: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e}")
    for key in ("fleet", "aggregate", "throughput"):
        if key not in doc:
            sys.exit(f"{path}: not a fleet bench artifact (no '{key}' section)")
    return doc


def diff_paths(a, b, prefix=""):
    """Leaf-level differences between two loaded subtrees."""
    if isinstance(a, dict) and isinstance(b, dict):
        out = []
        for k in set(a) | set(b):
            out += diff_paths(a.get(k), b.get(k), f"{prefix}.{k}" if prefix else k)
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{prefix}: length {len(a)} != {len(b)}"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out += diff_paths(x, y, f"{prefix}[{i}]")
        return out
    if a != b:
        return [f"{prefix}: {a!r} != {b!r}"]
    return []


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=10.0)
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failed = False
    for section in ("fleet", "aggregate"):
        diffs = diff_paths(base[section], cur[section], section)
        if diffs:
            failed = True
            print(f"deterministic section '{section}' drifted from the baseline:")
            for d in sorted(diffs)[:20]:
                print(f"  {d}")
            if len(diffs) > 20:
                print(f"  ... and {len(diffs) - 20} more")
        else:
            print(f"{section}: identical to the committed baseline")

    try:
        speedup = float(cur["throughput"]["speedup"])
        naive = float(cur["throughput"]["naive_per_device_s"])
        wall = float(cur["throughput"]["fleet_wall_s"])
    except (KeyError, TypeError, ValueError):
        sys.exit(f"{args.current}: throughput section lacks speedup/naive/wall numbers")
    print(
        f"throughput: {speedup:.1f}x over the naive loop "
        f"({naive * 1e3:.0f} ms/device naive, {wall:.2f} s fleet wall)"
    )
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the {args.min_speedup:g}x gate")
        failed = True

    try:
        ladder_sdc = cur["aggregate"]["by_policy"]["ladder"]["sdc_blocks"]
    except (KeyError, TypeError):
        sys.exit(f"{args.current}: aggregate lacks by_policy.ladder.sdc_blocks")
    if ladder_sdc != 0:
        print(f"FAIL: ladder slice shipped {ladder_sdc} SDC blocks (must be 0)")
        failed = True

    if failed:
        print("\nFAIL: fleet bench regressed vs the committed baseline.")
        return 1
    print("\nOK: fleet artifact matches the baseline and clears the speedup gate.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
