#!/usr/bin/env python3
"""Merge ulpmc-fleet shard artifacts into one fleet JSON.

Each shard runs `ulpmc-fleet --shard K/N --json shard_K.json`; this tool
merges the complete set {0..N-1} into output byte-identical to what an
unsharded `ulpmc-fleet` run over the same options would have written.

Byte-identity holds because the C++ side keeps every cross-device
reduction in integers (energy quantised to nanojoules, backoff to
microseconds, sketch bins to integer counts) and derives every float in
the artifact from those integers with arithmetic this script mirrors
exactly:

  * delivered_fraction = samples_delivered / samples_total (one IEEE
    divide of two exactly-representable integers);
  * sketch quantiles are a pure function of the integer bins (nearest
    rank, bin midpoint via frexp/ldexp) — never of the float extrema;
  * min/max are selected verbatim from the shard strings (C++ %g
    formatting is monotone, so ordering the printed strings by parsed
    value matches ordering the exact doubles).

Floats that are copied through (timeline metadata, extrema) are loaded
with parse_float=str and re-emitted verbatim; recomputed floats use
"%g", which matches the default C++ ostream formatting.

Exits non-zero with a one-line diagnosis on malformed input: a missing
or duplicate shard, mixed shard counts, disagreeing fleet metadata, or
an artifact whose record count contradicts its own header. Shard
artifacts left behind by restarted farm workers (crash + --resume, any
number of attempts) are by construction byte-identical to a single-shot
shard run and merge unchanged.

--verify-against FILE byte-compares the merged output against an
independently produced merge (normally ulpmc-farm's in-process C++
merge) and fails with a one-line diagnostic locating the first
difference — the cross-check that keeps this mirror and the C++
implementation honest about each other.
"""

import argparse
import json
import math
import sys

SLICE_INT_KEYS = (
    "devices",
    "energy_nj",
    "samples_total",
    "samples_delivered",
    "sdc_blocks",
    "brownouts",
    "total_blocks",
)
SLICE_KEYS = (
    "devices",
    "energy_nj",
    "samples_total",
    "samples_delivered",
    "delivered_fraction",
    "sdc_blocks",
    "brownouts",
    "total_blocks",
)
POLICIES = ("ladder", "baseline")
ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")
METRICS = ("energy_j", "delivered_fraction", "sdc_blocks", "max_backoff_s")
META_KEYS = (
    "timeline",
    "seed",
    "devices",
    "cohorts",
    "days",
    "baseline_fraction",
    "block_period_s",
    "thresholds",
)
THRESHOLD_KEYS = ("shed", "coarse", "tight", "silence")

BINS_PER_OCTAVE = 32


def fmt(v):
    """Render a scalar exactly as the C++ writer would."""
    if isinstance(v, str):
        return v  # float loaded verbatim via parse_float=str
    if isinstance(v, bool):
        raise TypeError("no booleans in fleet artifacts")
    if isinstance(v, int):
        return str(v)
    return "%g" % v  # mirrors default std::ostream formatting


def bin_lo(b):
    """Lower edge of log bin b; mirrors QuantileSketch::bin_lo exactly."""
    e, sub = divmod(b, BINS_PER_OCTAVE)  # floor division, as in C++
    return math.ldexp(0.5 + sub * (0.5 / BINS_PER_OCTAVE), e)


def quantile(total, zero, bins, q):
    """Mirror QuantileSketch::quantile: nearest rank, bin midpoint."""
    if total == 0:
        return 0.0
    rank = int(q * float(total - 1))  # uint64 cast truncates, as does int()
    cum = zero
    if rank < cum:
        return 0.0
    for b, c in bins:
        cum += c
        if rank < cum:
            return (bin_lo(b) + bin_lo(b + 1)) * 0.5
    return 0.0


def load_shard(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f, parse_float=str)
    except OSError as e:
        sys.exit(f"merge_fleet: cannot read {path}: {e.strerror}")
    except UnicodeDecodeError:
        sys.exit(f"merge_fleet: {path} is not UTF-8 text (a binary store is not a shard JSON)")
    except json.JSONDecodeError as e:
        sys.exit(f"merge_fleet: {path} is not valid JSON: {e.msg} (line {e.lineno})")
    for key in ("fleet", "aggregate"):
        if key not in doc:
            sys.exit(f"merge_fleet: {path} has no \"{key}\" section; not a fleet artifact")
    return doc


def parse_shard_key(path, fleet):
    if "shard" not in fleet:
        sys.exit(
            f"merge_fleet: {path} carries no \"shard\" key; it is an unsharded "
            "artifact and must not be merged"
        )
    text = fleet["shard"]
    parts = str(text).split("/")
    if len(parts) != 2:
        sys.exit(f"merge_fleet: {path} has malformed shard key {text!r} (want K/N)")
    try:
        k, n = int(parts[0]), int(parts[1])
    except ValueError:
        sys.exit(f"merge_fleet: {path} has malformed shard key {text!r} (want K/N)")
    if n < 1 or not 0 <= k < n:
        sys.exit(f"merge_fleet: {path} has impossible shard key {text!r}")
    return k, n


def check_meta(paths, docs):
    ref = docs[0]["fleet"]
    for path, doc in zip(paths[1:], docs[1:]):
        fleet = doc["fleet"]
        for key in META_KEYS:
            if fleet.get(key) != ref.get(key):
                sys.exit(
                    f"merge_fleet: shards disagree on fleet.{key}: "
                    f"{paths[0]} has {ref.get(key)!r}, {path} has {fleet.get(key)!r}"
                )
    for key in META_KEYS:
        if key not in ref:
            sys.exit(f"merge_fleet: {paths[0]} fleet section lacks \"{key}\"")
    thresholds = ref["thresholds"]
    if not isinstance(thresholds, dict) or tuple(thresholds) != THRESHOLD_KEYS:
        sys.exit(f"merge_fleet: {paths[0]} has malformed thresholds {thresholds!r}")
    return ref


def shard_device_count(devices, k, n):
    """Devices with gdi % n == k; mirrors fleet::shard_device_count."""
    return (devices - k - 1) // n + 1 if devices > k else 0


def merge_slices(paths, docs, picker):
    out = {key: 0 for key in SLICE_INT_KEYS}
    for path, doc in zip(paths, docs):
        sl = picker(doc["aggregate"])
        if sl is None or tuple(sl) != SLICE_KEYS:
            sys.exit(f"merge_fleet: {path} has a malformed aggregate slice")
        for key in SLICE_INT_KEYS:
            if not isinstance(sl[key], int):
                sys.exit(f"merge_fleet: {path} slice field {key} is not an integer")
            out[key] += sl[key]
    if out["samples_total"] > 0:
        out["delivered_fraction"] = out["samples_delivered"] / out["samples_total"]
    else:
        out["delivered_fraction"] = 0.0
    return out


def merge_metric(paths, docs, name):
    count = zero = 0
    min_s = max_s = None
    bins = {}
    for path, doc in zip(paths, docs):
        sk = doc["aggregate"].get("metrics", {}).get(name)
        if sk is None:
            sys.exit(f"merge_fleet: {path} lacks metric \"{name}\"")
        try:
            shard_count = sk["count"]
            count += shard_count
            zero += sk["zero"]
            for b, c in sk["bins"]:
                bins[b] = bins.get(b, 0) + c
            if shard_count > 0:
                if min_s is None or float(sk["min"]) < float(min_s):
                    min_s = sk["min"]
                if max_s is None or float(sk["max"]) > float(max_s):
                    max_s = sk["max"]
        except (KeyError, TypeError, ValueError):
            sys.exit(f"merge_fleet: {path} has a malformed \"{name}\" sketch")
    sorted_bins = sorted(bins.items())
    return {
        "count": count,
        "zero": zero,
        "min": min_s if min_s is not None else 0.0,
        "max": max_s if max_s is not None else 0.0,
        "p50": quantile(count, zero, sorted_bins, 0.50),
        "p90": quantile(count, zero, sorted_bins, 0.90),
        "p99": quantile(count, zero, sorted_bins, 0.99),
        "bins": sorted_bins,
    }


def render_slice(out, sl, indent, more):
    for i, key in enumerate(SLICE_KEYS):
        tail = "," if (more or i + 1 < len(SLICE_KEYS)) else ""
        out.append(f"{indent}\"{key}\": {fmt(sl[key])}{tail}\n")


def render(meta, records, total, by_policy, by_arch, metrics):
    out = []
    out.append("{\n")
    out.append("  \"fleet\": {\n")
    out.append(f"    \"timeline\": \"{meta['timeline']}\",\n")
    for key in ("seed", "devices", "cohorts", "days", "baseline_fraction", "block_period_s"):
        out.append(f"    \"{key}\": {fmt(meta[key])},\n")
    th = meta["thresholds"]
    out.append(
        "    \"thresholds\": {"
        + ", ".join(f"\"{k}\": {fmt(th[k])}" for k in THRESHOLD_KEYS)
        + "},\n"
    )
    out.append(f"    \"records\": {records}\n")
    out.append("  },\n")
    out.append("  \"aggregate\": {\n")
    render_slice(out, total, "    ", more=True)
    out.append("    \"by_policy\": {\n")
    for i, name in enumerate(POLICIES):
        out.append(f"      \"{name}\": {{\n")
        render_slice(out, by_policy[name], "        ", more=False)
        out.append("      }" + ("," if i + 1 < len(POLICIES) else "") + "\n")
    out.append("    },\n")
    out.append("    \"by_arch\": {\n")
    for i, name in enumerate(ARCHES):
        out.append(f"      \"{name}\": {{\n")
        render_slice(out, by_arch[name], "        ", more=False)
        out.append("      }" + ("," if i + 1 < len(ARCHES) else "") + "\n")
    out.append("    },\n")
    out.append("    \"metrics\": {\n")
    for i, name in enumerate(METRICS):
        sk = metrics[name]
        out.append(f"      \"{name}\": {{\n")
        for key in ("count", "zero", "min", "max", "p50", "p90", "p99"):
            out.append(f"        \"{key}\": {fmt(sk[key])},\n")
        body = ", ".join(f"[{b}, {c}]" for b, c in sk["bins"])
        out.append(f"        \"bins\": [{body}]\n")
        out.append("      }" + ("," if i + 1 < len(METRICS) else "") + "\n")
    out.append("    }\n")
    out.append("  }\n")
    out.append("}\n")
    return "".join(out)


def main():
    ap = argparse.ArgumentParser(
        description="Merge ulpmc-fleet shard JSON artifacts into one fleet artifact."
    )
    ap.add_argument("shards", nargs="+", help="shard JSON files (the complete 0..N-1 set)")
    ap.add_argument("-o", "--output", help="merged JSON path ('-' for stdout)")
    ap.add_argument(
        "--verify-against",
        metavar="FILE",
        help="byte-compare the merged output against FILE (e.g. the ulpmc-farm "
        "C++ merge) and exit non-zero on any difference",
    )
    args = ap.parse_args()
    if args.output is None and args.verify_against is None:
        ap.error("need -o/--output, --verify-against, or both")

    docs = [load_shard(p) for p in args.shards]
    keys = [parse_shard_key(p, d["fleet"]) for p, d in zip(args.shards, docs)]

    n = keys[0][1]
    for path, (_, kn) in zip(args.shards, keys):
        if kn != n:
            sys.exit(
                f"merge_fleet: mixed shard counts: {args.shards[0]} is of {n}, "
                f"{path} is of {kn}"
            )
    seen = {}
    for path, (k, _) in zip(args.shards, keys):
        if k in seen:
            sys.exit(f"merge_fleet: duplicate shard {k}/{n}: {seen[k]} and {path}")
        seen[k] = path
    missing = sorted(set(range(n)) - set(seen))
    if missing:
        sys.exit(
            f"merge_fleet: incomplete shard set: missing "
            + ", ".join(f"{k}/{n}" for k in missing)
        )

    meta = check_meta(args.shards, docs)
    devices = meta["devices"]
    records = 0
    for path, doc, (k, _) in zip(args.shards, docs, keys):
        rec = doc["fleet"].get("records")
        want = shard_device_count(devices, k, n)
        if rec != want:
            sys.exit(
                f"merge_fleet: {path} claims {rec} records but shard {k}/{n} of "
                f"{devices} devices must hold {want}"
            )
        records += rec
    if records != devices:
        sys.exit(f"merge_fleet: merged record count {records} != fleet devices {devices}")

    total = merge_slices(args.shards, docs, lambda a: {k: a[k] for k in SLICE_KEYS if k in a})
    by_policy = {
        name: merge_slices(args.shards, docs, lambda a, p=name: a.get("by_policy", {}).get(p))
        for name in POLICIES
    }
    by_arch = {
        name: merge_slices(args.shards, docs, lambda a, ar=name: a.get("by_arch", {}).get(ar))
        for name in ARCHES
    }
    metrics = {name: merge_metric(args.shards, docs, name) for name in METRICS}

    if total["devices"] != devices:
        sys.exit(
            f"merge_fleet: merged slice totals cover {total['devices']} devices, "
            f"fleet header says {devices}"
        )

    text = render(meta, records, total, by_policy, by_arch, metrics)
    if args.output == "-":
        sys.stdout.write(text)
    elif args.output is not None:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)

    if args.verify_against is not None:
        try:
            with open(args.verify_against, "rb") as f:
                theirs = f.read()
        except OSError as e:
            sys.exit(f"merge_fleet: cannot read {args.verify_against}: {e.strerror}")
        ours = text.encode("utf-8")
        if ours != theirs:
            i = next(
                (j for j, (a, b) in enumerate(zip(ours, theirs)) if a != b),
                min(len(ours), len(theirs)),
            )
            line = ours[:i].count(b"\n") + 1
            sys.exit(
                f"merge_fleet: cross-check FAILED: merged output differs from "
                f"{args.verify_against} at byte {i} (line {line}; "
                f"{len(ours)} vs {len(theirs)} bytes total)"
            )
        print(
            f"merge_fleet: cross-check OK: merged output is byte-identical to "
            f"{args.verify_against} ({len(ours)} bytes)",
            file=sys.stderr,
        )


if __name__ == "__main__":
    main()
