// ulpmc-asm: TamaRISC assembler driver.
//
//   ulpmc-asm prog.asm -o prog.upmc      assemble to a binary image
//   ulpmc-asm -d prog.upmc               disassemble a binary image
//   ulpmc-asm prog.asm --list            assemble and print the listing
//
// The binary container format is documented in src/isa/binfmt.hpp.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/binfmt.hpp"
#include "isa/listing.hpp"

using namespace ulpmc;

namespace {

int usage() {
    std::cerr << "usage: ulpmc-asm <prog.asm> [-o out.upmc] [--list]\n"
              << "       ulpmc-asm -d <prog.upmc>\n";
    return 2;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path, bool& ok) {
    std::ifstream in(path, std::ios::binary);
    ok = static_cast<bool>(in);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void print_listing(const isa::Program& p) { std::fputs(isa::format_listing(p).c_str(), stdout); }

} // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string output;
    bool disassemble = false;
    bool list = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-d") {
            disassemble = true;
        } else if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--list") {
            list = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            input = arg;
        }
    }
    if (input.empty()) return usage();

    if (disassemble) {
        bool ok = false;
        const auto bytes = read_file_bytes(input, ok);
        if (!ok) {
            std::cerr << "cannot open " << input << '\n';
            return 1;
        }
        std::string err;
        const auto prog = isa::load_program(bytes, err);
        if (!prog) {
            std::cerr << input << ": " << err << '\n';
            return 1;
        }
        print_listing(*prog);
        return 0;
    }

    std::ifstream in(input);
    if (!in) {
        std::cerr << "cannot open " << input << '\n';
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    isa::Program prog;
    try {
        prog = isa::assemble(ss.str());
    } catch (const isa::AssemblyError& e) {
        std::cerr << input << ":" << e.what() << '\n';
        return 1;
    }

    if (list || output.empty()) print_listing(prog);

    if (!output.empty()) {
        const auto bytes = isa::save_program(prog);
        std::ofstream out(output, std::ios::binary);
        if (!out) {
            std::cerr << "cannot write " << output << '\n';
            return 1;
        }
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        std::cout << "wrote " << output << " (" << bytes.size() << " bytes)\n";
    }
    return 0;
}
