// ulpmc-fleet: fleet simulation driver (DESIGN.md §13).
//
// Runs a fleet of heterogeneous device lifetimes — per-device
// architecture, resilience policy, workload cohort, initial charge and
// seed all derived from the global device index — over a work-stealing
// pool, with shared cohort benchmarks and a shared calibration cache.
// The JSON artifact is deterministic: byte-identical across thread
// counts, simulator engine tiers, and shard splits (K shard artifacts
// merged by tools/merge_fleet.py reproduce the unsharded bytes).
//
// Usage:
//   ulpmc-fleet --timeline FILE [options]
//     --timeline FILE   phase script (required)
//     --devices N       GLOBAL fleet size across all shards (default 1000)
//     --seed N          fleet master seed (default 1)
//     --cohorts N       workload cohorts / patients (default 8)
//     --days D          per-device lifetime in days (default: one pass)
//     --baseline F      fraction of devices on the baseline policy (default 0.25)
//     --engine E        reference|fast|trace|batched (default trace)
//     --threads N       worker threads, 0 = hardware (default 0)
//     --shard K/N       run shard K of N (devices with gdi % N == K)
//     --json FILE       write the deterministic artifact to FILE ('-' = stdout)
//     --store FILE      write the per-device binary record store to FILE
//
// Exit codes: 0 success, 2 bad usage (malformed, duplicate or
// inconsistent options, unreadable or corrupt timeline).
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "fleet/store.hpp"
#include "scenario/timeline.hpp"

namespace {

void usage(std::ostream& os) {
    os << "usage: ulpmc-fleet --timeline FILE [--devices N] [--seed N] [--cohorts N]\n"
          "                   [--days D] [--baseline F] [--engine E] [--threads N]\n"
          "                   [--shard K/N] [--json FILE] [--store FILE]\n";
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_shard(const std::string& s, unsigned& k, unsigned& n) {
    const auto slash = s.find('/');
    if (slash == std::string::npos) return false;
    std::uint64_t uk = 0, un = 0;
    if (!parse_u64(s.substr(0, slash), uk) || !parse_u64(s.substr(slash + 1), un)) return false;
    if (un < 1 || uk >= un) return false;
    k = static_cast<unsigned>(uk);
    n = static_cast<unsigned>(un);
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::string timeline_path, json_path, store_path;
    ulpmc::fleet::FleetOptions opt;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        auto value = [&](const char* name) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << name << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--timeline") {
            timeline_path = value("--timeline");
        } else if (arg == "--devices") {
            if (!parse_u64(value("--devices"), opt.devices) || opt.devices < 1) {
                std::cerr << "--devices: expected a positive count\n";
                return 2;
            }
        } else if (arg == "--seed") {
            if (!parse_u64(value("--seed"), opt.seed)) {
                std::cerr << "--seed: not a number\n";
                return 2;
            }
        } else if (arg == "--cohorts") {
            std::uint64_t c = 0;
            if (!parse_u64(value("--cohorts"), c) || c < 1 || c > 4096) {
                std::cerr << "--cohorts: expected a count in [1, 4096]\n";
                return 2;
            }
            opt.cohorts = static_cast<unsigned>(c);
        } else if (arg == "--days") {
            if (!parse_double(value("--days"), opt.days) || opt.days <= 0) {
                std::cerr << "--days: expected a positive number\n";
                return 2;
            }
        } else if (arg == "--baseline") {
            if (!parse_double(value("--baseline"), opt.baseline_fraction) ||
                opt.baseline_fraction < 0 || opt.baseline_fraction > 1) {
                std::cerr << "--baseline: expected a fraction in [0, 1]\n";
                return 2;
            }
        } else if (arg == "--engine") {
            if (!ulpmc::cluster::parse_engine(value("--engine"), opt.engine)) {
                std::cerr << "--engine: unknown engine (reference|fast|trace|batched)\n";
                return 2;
            }
        } else if (arg == "--threads") {
            std::uint64_t t = 0;
            if (!parse_u64(value("--threads"), t) || t > 1024) {
                std::cerr << "--threads: expected a count in [0, 1024]\n";
                return 2;
            }
            opt.threads = static_cast<unsigned>(t);
        } else if (arg == "--shard") {
            if (!parse_shard(value("--shard"), opt.shard_k, opt.shard_n)) {
                std::cerr << "--shard: expected K/N with 0 <= K < N\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--store") {
            store_path = value("--store");
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << arg << ": unknown option\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (timeline_path.empty()) {
        std::cerr << "--timeline is required\n";
        usage(std::cerr);
        return 2;
    }

    ulpmc::scenario::Timeline tl;
    try {
        tl = ulpmc::scenario::load_timeline(timeline_path);
    } catch (const ulpmc::scenario::TimelineError& e) {
        std::cerr << timeline_path << ": " << e.what() << "\n";
        return 2;
    }

    ulpmc::fleet::FleetEngine engine(tl, opt);
    const ulpmc::fleet::FleetResult res = engine.run();
    ulpmc::fleet::print_summary(std::cout, opt, res);

    if (!store_path.empty()) {
        ulpmc::fleet::StoreHeader hdr;
        hdr.cohorts = opt.cohorts;
        hdr.seed = opt.seed;
        hdr.devices = opt.devices;
        hdr.shard_k = opt.shard_k;
        hdr.shard_n = opt.shard_n;
        try {
            ulpmc::fleet::write_store(store_path, hdr, res.records);
        } catch (const ulpmc::fleet::FleetStoreError& e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    if (!json_path.empty()) {
        std::string name = timeline_path;
        if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
            name = name.substr(slash + 1);
        if (json_path == "-") {
            ulpmc::fleet::write_json(std::cout, name, opt, tl.block_period_s, res.aggregate,
                                     res.records.size());
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << json_path << ": cannot open for writing\n";
                return 2;
            }
            ulpmc::fleet::write_json(out, name, opt, tl.block_period_s, res.aggregate,
                                     res.records.size());
        }
    }
    return 0;
}
