// ulpmc-fleet: fleet simulation driver (DESIGN.md §13).
//
// Runs a fleet of heterogeneous device lifetimes — per-device
// architecture, resilience policy, workload cohort, initial charge and
// seed all derived from the global device index — over a work-stealing
// pool, with shared cohort benchmarks and a shared calibration cache.
// The JSON artifact is deterministic: byte-identical across thread
// counts, simulator engine tiers, and shard splits (K shard artifacts
// merged by tools/merge_fleet.py reproduce the unsharded bytes).
//
// Usage:
//   ulpmc-fleet --timeline FILE [options]
//     --timeline FILE   phase script (required)
//     --devices N       GLOBAL fleet size across all shards (default 1000)
//     --seed N          fleet master seed (default 1)
//     --cohorts N       workload cohorts / patients (default 8)
//     --days D          per-device lifetime in days (default: one pass)
//     --baseline F      fraction of devices on the baseline policy (default 0.25)
//     --engine E        reference|fast|trace|batched (default trace)
//     --threads N       worker threads, 0 = hardware (default 0)
//     --shard K/N       run shard K of N (devices with gdi % N == K)
//     --json FILE       write the deterministic artifact to FILE ('-' = stdout)
//     --store FILE      write the per-device binary record store to FILE
//     --journal FILE    append one durable frame per finished device to FILE
//     --resume FILE     replay FILE's intact frames, then continue journaling
//                       to it (missing file: fresh run). The journal binds to
//                       the run's options and timeline bytes; a mismatch is a
//                       usage error, never a silent partial replay.
//     --heartbeat S     append a liveness heartbeat frame to the journal every
//                       S seconds (requires --journal/--resume) so a farm
//                       supervisor can tell "slow device" from "hung worker"
//
// SIGTERM/SIGINT preempt gracefully: in-flight devices finish and their
// frames reach the journal, then the run exits 3 without writing the
// (incomplete) artifacts — a later --resume continues where durable
// progress ends.
//
// Exit codes: 0 success, 2 bad usage (malformed, duplicate or
// inconsistent options, unreadable or corrupt timeline/journal),
// 3 preempted by SIGTERM/SIGINT (journal flushed, artifacts unwritten).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/crc32.hpp"
#include "common/journal.hpp"
#include "common/serial.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "fleet/store.hpp"
#include "scenario/timeline.hpp"

namespace {

using ulpmc::fleet::kFleetHeartbeatFrame;
using ulpmc::fleet::kFleetMetaFrame;
using ulpmc::fleet::kFleetRecordFrame;

/// Set by the SIGTERM/SIGINT handler; the device hooks poll it and throw
/// Preempted so the pool drains in-flight work and the run exits 3.
volatile std::sig_atomic_t g_preempt = 0;

struct Preempted {};

void on_preempt_signal(int) { g_preempt = 1; }

void usage(std::ostream& os) {
    os << "usage: ulpmc-fleet --timeline FILE [--devices N] [--seed N] [--cohorts N]\n"
          "                   [--days D] [--baseline F] [--engine E] [--threads N]\n"
          "                   [--shard K/N] [--json FILE] [--store FILE]\n"
          "                   [--journal FILE | --resume FILE] [--heartbeat S]\n";
}

/// CRC over the timeline's raw bytes: the journal must not resume against
/// an edited script (same path, different phases -> different devices).
bool file_crc32(const std::string& path, std::uint32_t& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();
    out = ulpmc::crc32(bytes.data(), bytes.size());
    return true;
}

/// Everything a journaled record depends on. `threads` is deliberately
/// absent: results are thread-count-independent, so a resume may use a
/// different worker count than the run it continues.
std::vector<std::uint8_t> meta_payload(const ulpmc::fleet::FleetOptions& opt,
                                       std::uint32_t timeline_crc) {
    std::vector<std::uint8_t> m;
    ulpmc::put_raw(m, opt.seed);
    ulpmc::put_raw(m, opt.devices);
    ulpmc::put_raw(m, static_cast<std::uint32_t>(opt.cohorts));
    ulpmc::put_raw(m, static_cast<std::uint32_t>(opt.shard_k));
    ulpmc::put_raw(m, static_cast<std::uint32_t>(opt.shard_n));
    ulpmc::put_f64(m, opt.days);
    ulpmc::put_f64(m, opt.baseline_fraction);
    ulpmc::put_raw(m, static_cast<std::uint8_t>(opt.engine));
    ulpmc::put_raw(m, timeline_crc);
    return m;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

bool parse_shard(const std::string& s, unsigned& k, unsigned& n) {
    const auto slash = s.find('/');
    if (slash == std::string::npos) return false;
    std::uint64_t uk = 0, un = 0;
    if (!parse_u64(s.substr(0, slash), uk) || !parse_u64(s.substr(slash + 1), un)) return false;
    if (un < 1 || uk >= un) return false;
    k = static_cast<unsigned>(uk);
    n = static_cast<unsigned>(un);
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::string timeline_path, json_path, store_path, journal_path;
    bool resume = false;
    double heartbeat_s = 0;
    ulpmc::fleet::FleetOptions opt;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        auto value = [&](const char* name) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << name << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--timeline") {
            timeline_path = value("--timeline");
        } else if (arg == "--devices") {
            if (!parse_u64(value("--devices"), opt.devices) || opt.devices < 1) {
                std::cerr << "--devices: expected a positive count\n";
                return 2;
            }
        } else if (arg == "--seed") {
            if (!parse_u64(value("--seed"), opt.seed)) {
                std::cerr << "--seed: not a number\n";
                return 2;
            }
        } else if (arg == "--cohorts") {
            std::uint64_t c = 0;
            if (!parse_u64(value("--cohorts"), c) || c < 1 || c > 4096) {
                std::cerr << "--cohorts: expected a count in [1, 4096]\n";
                return 2;
            }
            opt.cohorts = static_cast<unsigned>(c);
        } else if (arg == "--days") {
            if (!parse_double(value("--days"), opt.days) || opt.days <= 0) {
                std::cerr << "--days: expected a positive number\n";
                return 2;
            }
        } else if (arg == "--baseline") {
            if (!parse_double(value("--baseline"), opt.baseline_fraction) ||
                opt.baseline_fraction < 0 || opt.baseline_fraction > 1) {
                std::cerr << "--baseline: expected a fraction in [0, 1]\n";
                return 2;
            }
        } else if (arg == "--engine") {
            if (!ulpmc::cluster::parse_engine(value("--engine"), opt.engine)) {
                std::cerr << "--engine: unknown engine (reference|fast|trace|batched)\n";
                return 2;
            }
        } else if (arg == "--threads") {
            std::uint64_t t = 0;
            if (!parse_u64(value("--threads"), t) || t > 1024) {
                std::cerr << "--threads: expected a count in [0, 1024]\n";
                return 2;
            }
            opt.threads = static_cast<unsigned>(t);
        } else if (arg == "--shard") {
            if (!parse_shard(value("--shard"), opt.shard_k, opt.shard_n)) {
                std::cerr << "--shard: expected K/N with 0 <= K < N\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--store") {
            store_path = value("--store");
        } else if (arg == "--journal") {
            journal_path = value("--journal");
        } else if (arg == "--resume") {
            journal_path = value("--resume");
            resume = true;
        } else if (arg == "--heartbeat") {
            if (!parse_double(value("--heartbeat"), heartbeat_s) || heartbeat_s <= 0) {
                std::cerr << "--heartbeat: expected a positive period in seconds\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << arg << ": unknown option\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (timeline_path.empty()) {
        std::cerr << "--timeline is required\n";
        usage(std::cerr);
        return 2;
    }
    if (seen.count("--journal") && seen.count("--resume")) {
        std::cerr << "--journal and --resume are mutually exclusive "
                     "(--resume already journals to its file)\n";
        return 2;
    }
    if (heartbeat_s > 0 && journal_path.empty()) {
        std::cerr << "--heartbeat requires --journal or --resume "
                     "(heartbeats are journal frames)\n";
        return 2;
    }

    ulpmc::scenario::Timeline tl;
    try {
        tl = ulpmc::scenario::load_timeline(timeline_path);
    } catch (const ulpmc::scenario::TimelineError& e) {
        std::cerr << timeline_path << ": " << e.what() << "\n";
        return 2;
    }

    // ---- durable progress journal (DESIGN.md §9.6) ---------------------
    std::unique_ptr<ulpmc::JournalWriter> journal;
    std::unordered_map<std::uint64_t, ulpmc::fleet::DeviceRecord> replay;
    if (!journal_path.empty()) {
        std::uint32_t tl_crc = 0;
        if (!file_crc32(timeline_path, tl_crc)) {
            std::cerr << timeline_path << ": cannot re-read for journal binding\n";
            return 2;
        }
        const std::vector<std::uint8_t> meta = meta_payload(opt, tl_crc);
        std::uint64_t keep = 0;
        bool have_meta = false;
        if (resume) {
            ulpmc::JournalContents jc;
            bool exists = true;
            try {
                jc = ulpmc::read_journal(journal_path);
            } catch (const ulpmc::JournalError&) {
                exists = false;
                std::cerr << "note: " << journal_path << ": no journal yet, starting fresh\n";
            }
            if (exists && !jc.frames.empty()) {
                if (jc.frames[0].kind != kFleetMetaFrame || jc.frames[0].payload != meta) {
                    std::cerr << journal_path
                              << ": journal was written by a different run "
                                 "(options or timeline changed); refusing to resume\n";
                    return 2;
                }
                have_meta = true;
                std::uint64_t skipped = 0;
                for (std::size_t f = 1; f < jc.frames.size(); ++f) {
                    const ulpmc::JournalFrame& fr = jc.frames[f];
                    ulpmc::fleet::DeviceRecord r;
                    if (fr.kind != kFleetRecordFrame) {
                        // Forward compatibility: a kind this binary does not
                        // know (a heartbeat, or a frame from a newer writer)
                        // carries no replay state — skip it, don't die on it.
                        if (fr.kind != kFleetHeartbeatFrame) ++skipped;
                        continue;
                    }
                    if (fr.payload.size() != sizeof(r)) {
                        std::cerr << journal_path << ": frame " << f << ": record payload is "
                                  << fr.payload.size() << " bytes, expected " << sizeof(r)
                                  << "; refusing to resume\n";
                        return 2;
                    }
                    std::memcpy(&r, fr.payload.data(), sizeof(r));
                    if (r.gdi >= opt.devices || r.gdi % opt.shard_n != opt.shard_k) {
                        std::cerr << journal_path << ": journaled device " << r.gdi
                                  << " is outside this shard; refusing to resume\n";
                        return 2;
                    }
                    replay[r.gdi] = r;
                }
                keep = jc.clean_bytes;
                if (jc.torn_tail)
                    std::cerr << "note: " << journal_path
                              << ": dropping torn frame after " << keep << " bytes\n";
                if (skipped > 0)
                    std::cerr << "note: " << journal_path << ": skipping " << skipped
                              << " frame(s) of unknown kind (newer writer?)\n";
                std::cerr << "note: resuming with " << replay.size()
                          << " journaled device(s)\n";
            }
        }
        try {
            journal = std::make_unique<ulpmc::JournalWriter>(journal_path, keep);
            if (!have_meta) journal->append(kFleetMetaFrame, meta);
        } catch (const ulpmc::JournalError& e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    // ---- graceful preemption + heartbeat -------------------------------
    // The journal mutex serializes device-record appends (completion
    // hook, any worker thread) against heartbeat appends (its own thread):
    // JournalWriter is not concurrency-safe and interleaved fwrites would
    // tear frames.
    std::signal(SIGTERM, on_preempt_signal);
    std::signal(SIGINT, on_preempt_signal);
    std::mutex journal_m;
    std::atomic<std::uint64_t> completed{replay.size()};
    std::atomic<bool> hb_stop{false};
    std::condition_variable hb_cv;
    std::mutex hb_m;
    std::thread hb;
    if (journal && heartbeat_s > 0) {
        hb = std::thread([&] {
            std::uint64_t seq = 0;
            std::unique_lock<std::mutex> lk(hb_m);
            while (!hb_stop.load()) {
                hb_cv.wait_for(lk, std::chrono::duration<double>(heartbeat_s));
                if (hb_stop.load()) break;
                std::vector<std::uint8_t> p;
                p.reserve(16); // [u64 seq][u64 completed]
                ulpmc::put_raw(p, seq++);
                ulpmc::put_raw(p, completed.load());
                std::lock_guard<std::mutex> jl(journal_m);
                try {
                    journal->append(kFleetHeartbeatFrame, p);
                } catch (const ulpmc::JournalError&) {
                    break; // record appends will surface the same failure
                }
            }
        });
    }
    auto stop_heartbeat = [&] {
        hb_stop.store(true);
        hb_cv.notify_all();
        if (hb.joinable()) hb.join();
    };

    ulpmc::fleet::FleetEngine engine(tl, opt);
    ulpmc::fleet::FleetResume hooks;
    hooks.lookup = [&](std::uint64_t gdi, ulpmc::fleet::DeviceRecord& out) {
        if (g_preempt) throw Preempted{};
        const auto it = replay.find(gdi);
        if (it == replay.end()) return false;
        out = it->second;
        return true;
    };
    if (journal) {
        hooks.on_complete = [&](const ulpmc::fleet::DeviceRecord& r) {
            std::vector<std::uint8_t> p(sizeof(r));
            std::memcpy(p.data(), &r, sizeof(r));
            {
                std::lock_guard<std::mutex> jl(journal_m);
                journal->append(kFleetRecordFrame, p);
            }
            completed.fetch_add(1);
        };
    }
    ulpmc::fleet::FleetResult res;
    try {
        res = engine.run(hooks);
    } catch (const Preempted&) {
        // In-flight devices finished and journaled before the pool
        // drained; everything else resumes from the journal next run.
        stop_heartbeat();
        if (journal)
            std::cerr << "preempted: " << completed.load()
                      << " device(s) journaled; resume to continue\n";
        else
            std::cerr << "preempted (no journal: progress not retained)\n";
        return 3;
    } catch (...) {
        stop_heartbeat();
        throw;
    }
    stop_heartbeat();
    ulpmc::fleet::print_summary(std::cout, opt, res);

    if (!store_path.empty()) {
        ulpmc::fleet::StoreHeader hdr;
        hdr.cohorts = opt.cohorts;
        hdr.seed = opt.seed;
        hdr.devices = opt.devices;
        hdr.shard_k = opt.shard_k;
        hdr.shard_n = opt.shard_n;
        try {
            ulpmc::fleet::write_store(store_path, hdr, res.records);
        } catch (const ulpmc::fleet::FleetStoreError& e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    if (!json_path.empty()) {
        std::string name = timeline_path;
        if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
            name = name.substr(slash + 1);
        if (json_path == "-") {
            ulpmc::fleet::write_json(std::cout, name, opt, tl.block_period_s, res.aggregate,
                                     res.records.size());
        } else {
            // Rendered in memory, published via fsync+rename: a killed run
            // never leaves a truncated artifact for a CI gate to misread.
            std::ostringstream out;
            ulpmc::fleet::write_json(out, name, opt, tl.block_period_s, res.aggregate,
                                     res.records.size());
            try {
                ulpmc::write_file_atomic(json_path, out.str());
            } catch (const ulpmc::AtomicFileError& e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        }
    }
    return 0;
}
