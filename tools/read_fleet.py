#!/usr/bin/env python3
"""Inspect and validate a ulpmc-fleet binary result store (.ulpf).

The store (DESIGN.md §13) is the one artifact that keeps per-device
results: a 40-byte header binding the records to their fleet (seed,
global size, cohorts, shard split) followed by one packed 56-byte
DeviceRecord per shard device in ascending gdi order. This tool is the
offline consumer: it re-validates the same structural invariants the
C++ reader enforces, recomputes the integer slice totals from the raw
records, and (with --check) cross-checks those totals against a fleet
JSON artifact produced by the same run — proving the streaming
aggregate and the record stream agree.

Exits non-zero with a one-line diagnosis on any malformed input: bad
magic, version or record-size skew, a truncated tail, shard arithmetic
that contradicts the record count, out-of-order or out-of-shard gdi,
or a JSON artifact whose totals disagree with the records.
"""

import argparse
import json
import struct
import sys

HEADER = struct.Struct("<4s3I2Q2I")  # magic, version, record_size, cohorts,
#                                      seed, devices, shard_k, shard_n
RECORD = struct.Struct("<5Q3I4B")  # gdi, energy_nj, samples_total,
#                                    samples_delivered, sdc_blocks,
#                                    total_blocks, max_backoff_us, cohort,
#                                    arch, policy, browned_out, pad
MAGIC = b"ULPF"
VERSION = 1

POLICIES = ("ladder", "baseline")
ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")
TOTAL_KEYS = (
    "devices",
    "energy_nj",
    "samples_total",
    "samples_delivered",
    "sdc_blocks",
    "brownouts",
    "total_blocks",
)


def die(msg):
    sys.exit(f"read_fleet: {msg}")


def shard_device_count(devices, k, n):
    """Devices with gdi % n == k; mirrors fleet::shard_device_count."""
    return (devices - k - 1) // n + 1 if devices > k else 0


class Record:
    __slots__ = (
        "gdi", "energy_nj", "samples_total", "samples_delivered",
        "sdc_blocks", "total_blocks", "max_backoff_us", "cohort",
        "arch", "policy", "browned_out",
    )

    def __init__(self, fields):
        (self.gdi, self.energy_nj, self.samples_total, self.samples_delivered,
         self.sdc_blocks, self.total_blocks, self.max_backoff_us, self.cohort,
         self.arch, self.policy, self.browned_out, pad) = fields
        if pad != 0:
            die(f"record gdi {self.gdi} has a nonzero pad byte")


def load_store(path):
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    if len(blob) < HEADER.size:
        die(f"{path}: too short for a store header ({len(blob)} bytes)")
    magic, version, record_size, cohorts, seed, devices, shard_k, shard_n = (
        HEADER.unpack_from(blob)
    )
    if magic != MAGIC:
        die(f"{path}: bad magic {magic!r}; not a ULPF store")
    if version != VERSION:
        die(f"{path}: store version {version}, this tool reads version {VERSION}")
    if record_size != RECORD.size:
        die(f"{path}: record size {record_size}, expected {RECORD.size}")
    if shard_n < 1 or shard_k >= shard_n:
        die(f"{path}: impossible shard key {shard_k}/{shard_n}")
    if cohorts < 1:
        die(f"{path}: cohort count must be at least 1")
    body = len(blob) - HEADER.size
    if body % RECORD.size != 0:
        die(f"{path}: truncated record stream ({body} bytes is not a "
            f"multiple of {RECORD.size})")
    count = body // RECORD.size
    want = shard_device_count(devices, shard_k, shard_n)
    if count != want:
        die(f"{path}: holds {count} records but shard {shard_k}/{shard_n} of "
            f"{devices} devices must hold {want}")
    header = {
        "cohorts": cohorts, "seed": seed, "devices": devices,
        "shard_k": shard_k, "shard_n": shard_n,
    }
    records = []
    prev = None
    for i in range(count):
        r = Record(RECORD.unpack_from(blob, HEADER.size + i * RECORD.size))
        if prev is not None and r.gdi <= prev:
            die(f"{path}: record {i} gdi {r.gdi} not above predecessor {prev}")
        if r.gdi >= devices or r.gdi % shard_n != shard_k:
            die(f"{path}: record {i} gdi {r.gdi} outside shard "
                f"{shard_k}/{shard_n} of {devices}")
        if r.cohort != r.gdi % cohorts:
            die(f"{path}: record gdi {r.gdi} cohort {r.cohort} contradicts "
                f"gdi % {cohorts}")
        if r.arch >= len(ARCHES) or r.policy >= len(POLICIES):
            die(f"{path}: record gdi {r.gdi} has unknown arch/policy "
                f"({r.arch}/{r.policy})")
        if r.browned_out > 1:
            die(f"{path}: record gdi {r.gdi} brownout flag {r.browned_out}")
        if r.samples_delivered > r.samples_total:
            die(f"{path}: record gdi {r.gdi} delivered more samples than sensed")
        records.append(r)
        prev = r.gdi
    return header, records


def slice_totals(records):
    out = {key: 0 for key in TOTAL_KEYS}
    for r in records:
        out["devices"] += 1
        out["energy_nj"] += r.energy_nj
        out["samples_total"] += r.samples_total
        out["samples_delivered"] += r.samples_delivered
        out["sdc_blocks"] += r.sdc_blocks
        out["brownouts"] += r.browned_out
        out["total_blocks"] += r.total_blocks
    return out


def print_summary(path, header, records):
    shard = f"{header['shard_k']}/{header['shard_n']}"
    print(f"{path}: seed {header['seed']}, {header['devices']} devices, "
          f"{header['cohorts']} cohorts, shard {shard}, "
          f"{len(records)} records")
    groups = [("all", slice_totals(records))]
    for p, name in enumerate(POLICIES):
        groups.append((name, slice_totals([r for r in records if r.policy == p])))
    for a, name in enumerate(ARCHES):
        groups.append((name, slice_totals([r for r in records if r.arch == a])))
    print(f"{'slice':<12}{'devices':>8}{'energy[mJ]':>12}{'delivered':>11}"
          f"{'sdc':>6}{'brownouts':>11}")
    for name, t in groups:
        frac = (t["samples_delivered"] / t["samples_total"]
                if t["samples_total"] else 0.0)
        print(f"{name:<12}{t['devices']:>8}{t['energy_nj'] / 1e6:>12.3f}"
              f"{frac:>10.2%}{t['sdc_blocks']:>6}{t['brownouts']:>11}")


def print_records(records, limit):
    n = len(records) if limit < 0 else min(limit, len(records))
    print(f"{'gdi':>6} {'policy':<9}{'arch':<11}{'energy_nj':>12}"
          f"{'samples':>10}{'delivered':>10}{'sdc':>5}{'blocks':>7} brownout")
    for r in records[:n]:
        print(f"{r.gdi:>6} {POLICIES[r.policy]:<9}{ARCHES[r.arch]:<11}"
              f"{r.energy_nj:>12}{r.samples_total:>10}{r.samples_delivered:>10}"
              f"{r.sdc_blocks:>5}{r.total_blocks:>7} {r.browned_out}")
    if n < len(records):
        print(f"... {len(records) - n} more (use --records -1 for all)")


def load_artifact(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except UnicodeDecodeError:
        die(f"{path} is not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON: {e.msg} (line {e.lineno})")
    for key in ("fleet", "aggregate"):
        if key not in doc:
            die(f"{path} has no \"{key}\" section; not a fleet artifact")
    return doc


def check_slice(path, name, got, want):
    if not isinstance(want, dict):
        die(f"{path} aggregate slice \"{name}\" is missing or malformed")
    for key in TOTAL_KEYS:
        if want.get(key) != got[key]:
            die(f"{path} disagrees with the records on {name}.{key}: "
                f"artifact says {want.get(key)!r}, records sum to {got[key]}")


def cross_check(store_path, json_path, header, records):
    doc = load_artifact(json_path)
    fleet = doc["fleet"]
    for key in ("seed", "devices", "cohorts"):
        if fleet.get(key) != header[key]:
            die(f"{json_path} fleet.{key} is {fleet.get(key)!r}, store header "
                f"says {header[key]}")
    shard = f"{header['shard_k']}/{header['shard_n']}"
    json_shard = str(fleet.get("shard", "0/1"))  # unsharded artifacts omit the key
    if json_shard != shard:
        die(f"{json_path} covers shard {json_shard}, store is shard {shard}")
    if fleet.get("records") != len(records):
        die(f"{json_path} claims {fleet.get('records')!r} records, store "
            f"holds {len(records)}")
    agg = doc["aggregate"]
    check_slice(json_path, "total", slice_totals(records),
                {k: agg.get(k) for k in TOTAL_KEYS})
    for p, name in enumerate(POLICIES):
        check_slice(json_path, f"by_policy.{name}",
                    slice_totals([r for r in records if r.policy == p]),
                    agg.get("by_policy", {}).get(name))
    for a, name in enumerate(ARCHES):
        check_slice(json_path, f"by_arch.{name}",
                    slice_totals([r for r in records if r.arch == a]),
                    agg.get("by_arch", {}).get(name))
    print(f"{store_path}: records agree with {json_path} "
          f"(total, per-policy and per-arch integer sums)")


def main():
    ap = argparse.ArgumentParser(
        description="Inspect and validate a ulpmc-fleet binary store (.ulpf)."
    )
    ap.add_argument("store", help="binary store written by ulpmc-fleet --store")
    ap.add_argument("--records", type=int, default=0, metavar="N",
                    help="also print the first N records (-1 for all)")
    ap.add_argument("--check", metavar="JSON",
                    help="cross-check totals against a fleet JSON artifact")
    args = ap.parse_args()

    header, records = load_store(args.store)
    print_summary(args.store, header, records)
    if args.records:
        print_records(records, args.records)
    if args.check:
        cross_check(args.store, args.check, header, records)


if __name__ == "__main__":
    main()
