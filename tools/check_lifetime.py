#!/usr/bin/env python3
"""Gate device-lifetime regressions against the committed baseline.

Usage: check_lifetime.py BASELINE.json CURRENT.json

Both files are lifetime artifacts from `ext_lifetime --json` (or
`ulpmc-life --json`). Runs are matched by identity — timeline, policy,
seed and architecture — and the comparison is exact: lifetimes are seeded
and deterministic (byte-identical across engine tiers and thread counts),
so any drift is a behavioral change, not noise. The gate fails when a
matched run's delivered-sample fraction drops or its SDC count rises,
when a baseline run disappears, and when the ladder-beats-baseline
invariants stop holding in the CURRENT artifact: for every timeline/seed
pair present with both policies, the ladder must deliver at least the
baseline's sample fraction, ship zero SDC blocks, and brown out no
earlier than the baseline.
"""

import argparse
import json
import sys

ID_KEYS = ("timeline", "policy", "seed", "arch")

REQUIRED = ("delivered_fraction", "sdc_blocks", "first_brownout_s")


def load(path):
    # A missing, truncated or hand-mangled artifact must fail the gate
    # with a diagnosis, not a traceback (CI wires stderr to the check).
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        sys.exit(f"{path}: not a lifetime artifact (no 'runs' list)")
    timeline = doc.get("timeline")
    index = {}
    for i, r in enumerate(doc["runs"]):
        if not isinstance(r, dict) or any(
            not isinstance(r.get(k), (int, float)) for k in REQUIRED
        ):
            sys.exit(f"{path}: run #{i} lacks {'/'.join(REQUIRED)}")
        key = (timeline,) + tuple(r.get(k) for k in ID_KEYS[1:])
        if key in index:
            sys.exit(f"{path}: duplicate run identity {key}")
        index[key] = r
    return index


def describe(key):
    return ", ".join(f"{k}={v}" for k, v in zip(ID_KEYS, key) if v is not None)


def lifetime_ge(a, b):
    """first_brownout_s comparison where -1 means 'never browned out'."""
    if a < 0:
        return True
    return b >= 0 and a >= b


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failed = False
    print(f"{'run':58s} {'base dlv':>9s} {'cur dlv':>9s} {'base SDC':>9s} {'cur SDC':>8s}")
    for key, b in base.items():
        label = describe(key)[:58]
        c = cur.get(key)
        if c is None:
            print(f"{label:58s}  MISSING from current report")
            failed = True
            continue
        ok = (
            c["delivered_fraction"] >= b["delivered_fraction"]
            and c["sdc_blocks"] <= b["sdc_blocks"]
            and lifetime_ge(c["first_brownout_s"], b["first_brownout_s"])
        )
        print(
            f"{label:58s} {b['delivered_fraction']:9.4f} {c['delivered_fraction']:9.4f} "
            f"{b['sdc_blocks']:9d} {c['sdc_blocks']:8d}  {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failed = True

    # Ladder-beats-baseline invariants on the current artifact: the whole
    # point of the degradation ladder, checked wherever both policies ran.
    pairs = 0
    for key, ladder in cur.items():
        if key[1] != "ladder":
            continue
        other = cur.get((key[0], "baseline") + key[2:])
        if other is None:
            continue
        pairs += 1
        label = describe((key[0], "ladder-vs-baseline") + key[2:])[:70]
        problems = []
        if ladder["sdc_blocks"] != 0:
            problems.append(f"ladder shipped {ladder['sdc_blocks']} SDC blocks")
        if ladder["delivered_fraction"] < other["delivered_fraction"]:
            problems.append(
                f"ladder delivered {ladder['delivered_fraction']:.4f} < "
                f"baseline {other['delivered_fraction']:.4f}"
            )
        if not lifetime_ge(ladder["first_brownout_s"], other["first_brownout_s"]):
            problems.append(
                f"ladder browned out at {ladder['first_brownout_s']} s, before "
                f"baseline ({other['first_brownout_s']} s)"
            )
        if problems:
            print(f"{label}: " + "; ".join(problems))
            failed = True

    if failed:
        print("\nFAIL: lifetime metrics regressed vs the committed baseline.")
        return 1
    print(
        f"\nOK: all {len(base)} runs at or above the committed baseline"
        f" ({pairs} ladder-vs-baseline pairs verified)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
