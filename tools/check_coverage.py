#!/usr/bin/env python3
"""Gate fault-coverage regressions against the committed baseline.

Usage: check_coverage.py BASELINE.json CURRENT.json

Both files are campaign artifacts from `ext_fault_campaign --json` (or
tools/merge_campaign.py). Campaigns are matched by their full identity —
workload, architecture, ECC, register protection, checkpoint mode, burst
shape, seed and injection count — and, unlike the timing gate, the
comparison is exact: the campaigns are seeded and deterministic, so any
drift is a behavioral change in the simulator or the protection layer,
not noise. The gate fails when a matched campaign's coverage drops or its
SDC count rises, and when a baseline campaign disappears from the current
report. Protected-tier campaigns that report zero SDC in the baseline
must stay at zero.
"""

import argparse
import json
import sys

ID_KEYS = (
    "workload",
    "policy",
    "arch",
    "ecc",
    "protection",
    "checkpoint",
    "burst_len",
    "reg_burst",
    "seed",
    "injections",
)


def load(path):
    # A missing, truncated or hand-mangled artifact must fail the gate
    # with a diagnosis, not a traceback (CI wires stderr to the check).
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("campaigns"), list):
        sys.exit(f"{path}: not a campaign artifact (no 'campaigns' list)")
    index = {}
    for i, c in enumerate(doc["campaigns"]):
        if (
            not isinstance(c, dict)
            or not isinstance(c.get("outcomes"), dict)
            or not isinstance(c.get("coverage"), (int, float))
        ):
            sys.exit(f"{path}: campaign #{i} lacks 'outcomes'/'coverage'")
        key = tuple(c.get(k) for k in ID_KEYS)
        if key in index:
            sys.exit(f"{path}: duplicate campaign identity {key}")
        index[key] = c
    return index


def describe(key):
    return ", ".join(f"{k}={v}" for k, v in zip(ID_KEYS, key) if v is not None)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failed = False
    print(f"{'campaign':70s} {'base cov':>9s} {'cur cov':>9s} {'base SDC':>9s} {'cur SDC':>8s}")
    for key, b in base.items():
        label = describe(key)[:70]
        c = cur.get(key)
        if c is None:
            print(f"{label:70s}  MISSING from current report")
            failed = True
            continue
        b_sdc = b["outcomes"].get("SDC", 0)
        c_sdc = c["outcomes"].get("SDC", 0)
        ok = c["coverage"] >= b["coverage"] and c_sdc <= b_sdc
        print(
            f"{label:70s} {b['coverage']:9.4f} {c['coverage']:9.4f} "
            f"{b_sdc:9d} {c_sdc:8d}  {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failed = True

    if failed:
        print("\nFAIL: fault coverage dropped (or SDC rose) vs the committed baseline.")
        return 1
    print(f"\nOK: all {len(base)} campaigns at or above the committed coverage baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
