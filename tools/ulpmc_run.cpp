// ulpmc-run: execute a TamaRISC program image on the cycle-accurate
// cluster and report what happened.
//
//   ulpmc-run prog.upmc [options]
//     --arch mc-ref|ulpmc-int|ulpmc-bank   (default ulpmc-bank)
//     --cores N                            (default 8)
//     --shared W --private W               DM layout in words
//                                          (default 64 / 1024)
//     --trace N                            print the last N trace events
//     --dump ADDR LEN                      dump core 0's memory after run
//     --max-cycles N                       safety limit (default 10M)
//
// Assembly sources are also accepted directly (detected by extension).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "isa/assembler.hpp"
#include "isa/binfmt.hpp"

using namespace ulpmc;

namespace {

int usage() {
    std::cerr << "usage: ulpmc-run <prog.upmc|prog.asm> [--arch A] [--cores N]\n"
                 "                 [--shared W] [--private W] [--trace N]\n"
                 "                 [--dump ADDR LEN] [--max-cycles N]\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string arch_name = "ulpmc-bank";
    unsigned cores = kNumCores;
    Addr shared_words = 64;
    Addr private_words = 1024;
    std::size_t trace_n = 0;
    long dump_addr = -1;
    unsigned dump_len = 0;
    Cycle max_cycles = 10'000'000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs " << what << '\n';
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--arch") {
            arch_name = next("a name");
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(std::stoul(next("a count")));
        } else if (arg == "--shared") {
            shared_words = static_cast<Addr>(std::stoul(next("words")));
        } else if (arg == "--private") {
            private_words = static_cast<Addr>(std::stoul(next("words")));
        } else if (arg == "--trace") {
            trace_n = std::stoul(next("a count"));
        } else if (arg == "--dump") {
            dump_addr = std::stol(next("an address"));
            dump_len = static_cast<unsigned>(std::stoul(next("a length")));
        } else if (arg == "--max-cycles") {
            max_cycles = std::stoull(next("a count"));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            input = arg;
        }
    }
    if (input.empty()) return usage();

    // --- load the program ----------------------------------------------------
    isa::Program prog;
    if (input.size() > 4 && input.substr(input.size() - 4) == ".asm") {
        std::ifstream in(input);
        if (!in) {
            std::cerr << "cannot open " << input << '\n';
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        try {
            prog = isa::assemble(ss.str());
        } catch (const isa::AssemblyError& e) {
            std::cerr << input << ":" << e.what() << '\n';
            return 1;
        }
    } else {
        std::ifstream in(input, std::ios::binary);
        if (!in) {
            std::cerr << "cannot open " << input << '\n';
            return 1;
        }
        const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                              std::istreambuf_iterator<char>()};
        std::string err;
        const auto loaded = isa::load_program(bytes, err);
        if (!loaded) {
            std::cerr << input << ": " << err << '\n';
            return 1;
        }
        prog = *loaded;
    }

    // --- configure the cluster ----------------------------------------------
    cluster::ArchKind kind = cluster::ArchKind::UlpmcBank;
    if (arch_name == "mc-ref") {
        kind = cluster::ArchKind::McRef;
    } else if (arch_name == "ulpmc-int") {
        kind = cluster::ArchKind::UlpmcInt;
    } else if (arch_name != "ulpmc-bank") {
        std::cerr << "unknown architecture " << arch_name << '\n';
        return 2;
    }
    auto cfg = cluster::make_config(kind, {shared_words, private_words});
    cfg.cores = cores;
    cfg.barrier_enabled = true; // harmless if unused

    cluster::Cluster cl(cfg, prog);
    cluster::RingTrace ring(trace_n ? trace_n : 1);
    if (trace_n) cl.set_trace(&ring);

    cl.run(max_cycles);

    // --- report --------------------------------------------------------------
    const auto& s = cl.stats();
    std::cout << "arch " << cluster::arch_name(kind) << ", " << cores << " cores: " << s.cycles
              << " cycles, " << s.total_ops() << " ops (" << format_fixed(s.ops_per_cycle(), 3)
              << " ops/cycle)\n"
              << "IM bank accesses " << format_count(s.im_bank_accesses) << " ("
              << format_count(s.ixbar.broadcast_riders) << " broadcast riders), DM accesses "
              << format_count(s.dm_bank_accesses()) << ", conflicts denied "
              << format_count(s.ixbar.denied + s.dxbar.denied) << '\n';

    int rc = 0;
    Table t({"core", "state", "instructions", "r0..r3"});
    for (unsigned p = 0; p < cores; ++p) {
        const auto& st = cl.core_state(static_cast<CoreId>(p));
        std::string state = "running";
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None) {
            state = std::string("TRAP:") + core::trap_name(cl.core_trap(static_cast<CoreId>(p)));
            rc = 3;
        } else if (cl.core_halted(static_cast<CoreId>(p))) {
            state = "halted";
        } else {
            rc = 4; // hit max-cycles
        }
        t.add_row({std::to_string(p), state, std::to_string(s.core[p].instret),
                   std::to_string(st.regs[0]) + " " + std::to_string(st.regs[1]) + " " +
                       std::to_string(st.regs[2]) + " " + std::to_string(st.regs[3])});
    }
    t.print(std::cout);

    if (dump_addr >= 0) {
        std::cout << "\ncore 0 memory @" << dump_addr << ":\n ";
        for (unsigned i = 0; i < dump_len; ++i)
            std::cout << ' ' << cl.dm_peek(0, static_cast<Addr>(dump_addr + i));
        std::cout << '\n';
    }
    if (trace_n) {
        std::cout << "\nlast " << trace_n << " trace events (of " << ring.total() << "):\n";
        ring.print(std::cout);
    }
    return rc;
}
