// ulpmc-run: execute a TamaRISC program image on the cycle-accurate
// cluster and report what happened.
//
//   ulpmc-run prog.upmc [options]
//     --arch mc-ref|ulpmc-int|ulpmc-bank   (default ulpmc-bank)
//     --cores N                            (default 8)
//     --shared W --private W               DM layout in words
//                                          (default 64 / 1024)
//     --engine reference|fast|trace|batched  simulator tier (default trace;
//                                          results are identical, see
//                                          DESIGN.md §10-11)
//     --batch B                            lanes under --engine batched
//                                          (default 8)
//     --ecc                                SEC-DED on every memory bank
//     --regprot none|parity|tmr            register-file protection mode
//     --im-scrub                           idle-cycle IM scrub walker
//     --dm-scrub                           idle-cycle DM scrub walker
//     --xbar-selfcheck                     self-checking crossbar arbiters
//     --watchdog N                         stuck-core trap after N idle cycles
//     --trace N                            print the last N trace events
//     --dump ADDR LEN                      dump core 0's memory after run
//     --max-cycles N                       safety limit (default 10M)
//
// Assembly sources are also accepted directly (detected by extension).
// Every option may be given at most once, and --batch is only meaningful
// under --engine batched — violations are rejected with a one-line error.
// Exit codes: 0 all cores halted, 1 load error, 2 bad usage (malformed,
// duplicate or inconsistent options), 3 a core trapped (name printed),
// 4 the max-cycles limit was hit.
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "cluster/batched.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "isa/assembler.hpp"
#include "isa/binfmt.hpp"
#include "isa/program_image.hpp"

using namespace ulpmc;

namespace {

int usage() {
    std::cerr << "usage: ulpmc-run <prog.upmc|prog.asm> [--arch A] [--cores N]\n"
                 "                 [--shared W] [--private W] [--engine E] [--batch B]\n"
                 "                 [--ecc]\n"
                 "                 [--regprot none|parity|tmr] [--im-scrub] [--dm-scrub]\n"
                 "                 [--xbar-selfcheck] [--watchdog N]\n"
                 "                 [--trace N] [--dump ADDR LEN] [--max-cycles N]\n";
    return 2;
}

/// Strict decimal parse with range check; exits with a clear message on
/// anything malformed (no silent wrap, no std::stoul aborts).
std::uint64_t parse_num(const std::string& arg, const std::string& value, std::uint64_t min,
                        std::uint64_t max) {
    std::uint64_t v = 0;
    const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || p != value.data() + value.size()) {
        std::cerr << arg << ": '" << value << "' is not a number\n";
        std::exit(2);
    }
    if (v < min || v > max) {
        std::cerr << arg << ": " << v << " out of range [" << min << ", " << max << "]\n";
        std::exit(2);
    }
    return v;
}

} // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string arch_name = "ulpmc-bank";
    unsigned cores = kNumCores;
    Addr shared_words = 64;
    Addr private_words = 1024;
    bool ecc = false;
    bool im_scrub = false;
    bool dm_scrub = false;
    bool xbar_self_check = false;
    core::RegProtection regprot = core::RegProtection::None;
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    unsigned batch = 8;
    bool batch_given = false;
    Cycle watchdog = 0;
    std::size_t trace_n = 0;
    long dump_addr = -1;
    unsigned dump_len = 0;
    Cycle max_cycles = 10'000'000;

    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // Repeating an option is always a mistake (the second occurrence
        // would silently win) — reject it instead of guessing intent.
        if (!arg.empty() && arg[0] == '-' && !seen.insert(arg).second) {
            std::cerr << arg << ": duplicate option\n";
            return 2;
        }
        const auto next = [&](const char* what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs " << what << '\n';
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--arch") {
            arch_name = next("a name");
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(parse_num(arg, next("a count"), 1, kNumCores));
        } else if (arg == "--shared") {
            shared_words =
                static_cast<Addr>(parse_num(arg, next("words"), 0, kDmWordsTotal));
        } else if (arg == "--private") {
            private_words =
                static_cast<Addr>(parse_num(arg, next("words"), 1, kDmWordsTotal));
        } else if (arg == "--ecc") {
            ecc = true;
        } else if (arg == "--im-scrub") {
            im_scrub = true;
        } else if (arg == "--dm-scrub") {
            dm_scrub = true;
        } else if (arg == "--xbar-selfcheck") {
            xbar_self_check = true;
        } else if (arg == "--regprot") {
            const std::string name = next("none|parity|tmr");
            if (!core::parse_reg_protection(name.c_str(), regprot)) {
                std::cerr << "unknown protection mode '" << name
                          << "' (expected none, parity or tmr)\n";
                return 2;
            }
        } else if (arg == "--engine") {
            const std::string name = next("reference|fast|trace|batched");
            if (!cluster::parse_engine(name, engine)) {
                std::cerr << "unknown engine '" << name
                          << "' (expected reference, fast, trace or batched)\n";
                return 2;
            }
        } else if (arg == "--batch") {
            batch = static_cast<unsigned>(parse_num(arg, next("a lane count"), 1, 4096));
            batch_given = true;
        } else if (arg == "--watchdog") {
            watchdog = parse_num(arg, next("a cycle count"), 1, 1'000'000'000);
        } else if (arg == "--trace") {
            trace_n = parse_num(arg, next("a count"), 0, 1'000'000);
        } else if (arg == "--dump") {
            dump_addr = static_cast<long>(parse_num(arg, next("an address"), 0, kDmWordsTotal));
            dump_len = static_cast<unsigned>(parse_num(arg, next("a length"), 1, kDmWordsTotal));
        } else if (arg == "--max-cycles") {
            max_cycles = parse_num(arg, next("a count"), 1, ~0ull);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            if (!input.empty()) {
                std::cerr << "more than one program file given ('" << input << "' and '" << arg
                          << "')\n";
                return 2;
            }
            input = arg;
        }
    }
    if (input.empty()) return usage();
    if (batch_given && engine != cluster::SimEngine::Batched) {
        std::cerr << "--batch requires --engine batched (lanes only exist in the batched tier)\n";
        return 2;
    }

    // --- load the program ----------------------------------------------------
    isa::Program prog;
    if (input.size() > 4 && input.substr(input.size() - 4) == ".asm") {
        std::ifstream in(input);
        if (!in) {
            std::cerr << "cannot open " << input << '\n';
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        try {
            prog = isa::assemble(ss.str());
        } catch (const isa::AssemblyError& e) {
            std::cerr << input << ":" << e.what() << '\n';
            return 1;
        }
    } else {
        std::ifstream in(input, std::ios::binary);
        if (!in) {
            std::cerr << "cannot open " << input << '\n';
            return 1;
        }
        const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                              std::istreambuf_iterator<char>()};
        std::string err;
        const auto loaded = isa::load_program(bytes, err);
        if (!loaded) {
            std::cerr << input << ": malformed image: " << err << '\n';
            return 1;
        }
        prog = *loaded;
    }
    if (prog.text.empty()) {
        std::cerr << input << ": malformed image: empty text section\n";
        return 1;
    }
    if (prog.text.size() > kImWordsPerBank) {
        std::cerr << input << ": text section (" << prog.text.size()
                  << " words) exceeds an IM bank (" << kImWordsPerBank << ")\n";
        return 1;
    }

    // --- configure the cluster ----------------------------------------------
    cluster::ArchKind kind = cluster::ArchKind::UlpmcBank;
    if (arch_name == "mc-ref") {
        kind = cluster::ArchKind::McRef;
    } else if (arch_name == "ulpmc-int") {
        kind = cluster::ArchKind::UlpmcInt;
    } else if (arch_name != "ulpmc-bank") {
        std::cerr << "unknown architecture '" << arch_name
                  << "' (expected mc-ref, ulpmc-int or ulpmc-bank)\n";
        return 2;
    }
    if (shared_words + static_cast<std::size_t>(private_words) * cores > kDmWordsTotal) {
        std::cerr << "DM layout does not fit: " << shared_words << " shared + " << private_words
                  << " private x " << cores << " cores > " << kDmWordsTotal << " words\n";
        return 2;
    }
    auto cfg = cluster::make_config(kind, {shared_words, private_words});
    cfg.cores = cores;
    cfg.barrier_enabled = true; // harmless if unused
    cfg.ecc_enabled = ecc;
    cfg.im_scrub = im_scrub;
    cfg.dm_scrub = dm_scrub;
    cfg.xbar_self_check = xbar_self_check;
    cfg.reg_protection = regprot;
    cfg.engine = engine;
    cfg.watchdog_cycles = watchdog;
    if (prog.data.size() > cfg.dm_layout.limit()) {
        std::cerr << input << ": data image (" << prog.data.size()
                  << " words) exceeds the DM layout (" << cfg.dm_layout.limit() << " words)\n";
        return 1;
    }
    if (dump_addr >= 0 &&
        static_cast<std::size_t>(dump_addr) + dump_len > cfg.dm_layout.limit()) {
        std::cerr << "--dump range [" << dump_addr << ", " << dump_addr + dump_len
                  << ") exceeds the DM layout (" << cfg.dm_layout.limit() << " words)\n";
        return 2;
    }

    // Under --engine batched, B identical lanes run over one shared
    // representative (all stay in lockstep without fault injection); the
    // report below reads the representative, which embodies every lane.
    const auto image = isa::ProgramImage::build(prog);
    std::unique_ptr<cluster::BatchedCluster> bc;
    std::unique_ptr<cluster::Cluster> solo;
    if (engine == cluster::SimEngine::Batched)
        bc = std::make_unique<cluster::BatchedCluster>(cfg, image, batch);
    else
        solo = std::make_unique<cluster::Cluster>(cfg, image);
    cluster::Cluster& cl = bc ? bc->rep() : *solo;
    cluster::RingTrace ring(trace_n ? trace_n : 1);
    if (trace_n) cl.set_trace(&ring);

    if (bc)
        bc->run_lockstep(max_cycles);
    else
        cl.run(max_cycles);

    // --- report --------------------------------------------------------------
    const auto& s = cl.stats();
    std::cout << "arch " << cluster::arch_name(kind) << ", " << cores << " cores: " << s.cycles
              << " cycles, " << s.total_ops() << " ops (" << format_fixed(s.ops_per_cycle(), 3)
              << " ops/cycle)\n"
              << "IM bank accesses " << format_count(s.im_bank_accesses) << " ("
              << format_count(s.ixbar.broadcast_riders) << " broadcast riders), DM accesses "
              << format_count(s.dm_bank_accesses()) << ", conflicts denied "
              << format_count(s.ixbar.denied + s.dxbar.denied) << '\n';

    cluster::print_run_summary(std::cout, s);
    if (bc) {
        const auto ls = bc->lane_stats(0);
        std::cout << "batched: " << bc->lanes() << " lanes, " << ls.batch_lane_peels
                  << " peels, " << format_count(ls.batch_lockstep_cycles)
                  << " lockstep cycles/lane\n";
    }

    int rc = 0;
    std::cout << "registers (r0..r3):\n";
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        const auto& st = cl.core_state(pid);
        if (cl.core_trap(pid) != core::Trap::None) {
            rc = 3;
        } else if (!cl.core_halted(pid)) {
            rc = 4; // hit max-cycles
        }
        std::cout << "  core " << p << ": " << st.regs[0] << ' ' << st.regs[1] << ' '
                  << st.regs[2] << ' ' << st.regs[3] << '\n';
    }
    if (rc == 3) {
        for (unsigned p = 0; p < cores; ++p) {
            const auto pid = static_cast<CoreId>(p);
            if (cl.core_trap(pid) != core::Trap::None) {
                std::cerr << "core " << p << " trapped: " << core::trap_name(cl.core_trap(pid))
                          << '\n';
            }
        }
    } else if (rc == 4) {
        std::cerr << "max-cycles limit (" << max_cycles << ") hit with cores still running\n";
    }

    if (dump_addr >= 0) {
        std::cout << "\ncore 0 memory @" << dump_addr << ":\n ";
        for (unsigned i = 0; i < dump_len; ++i)
            std::cout << ' ' << cl.dm_peek(0, static_cast<Addr>(dump_addr + i));
        std::cout << '\n';
    }
    if (trace_n) {
        std::cout << "\nlast " << trace_n << " trace events (of " << ring.total() << "):\n";
        ring.print(std::cout);
    }
    return rc;
}
