#!/usr/bin/env python3
"""Gate simulator-speed regressions against the committed baseline.

Usage: check_sim_speed.py BASELINE.json CURRENT.json [--tolerance 0.15]

Both files are google-benchmark JSON reports from `micro_sim_speed --json`.
Absolute nanoseconds are machine-dependent (the baseline was recorded on a
different host than CI), so the gate compares *engine-tier speedups* —
ratios of two benchmarks from the same run, which cancel the host's clock
and load. A speedup that drops more than the tolerance (default 15%)
below its committed value fails the job.
"""

import argparse
import json
import sys

# (label, optimized benchmark, reference benchmark, iterations-per-iteration
# scale of the optimized one relative to the reference one)
PAIRS = [
    ("cluster-run conflict-free trace/ref",
     "BM_ClusterRunConflictFree/trace", "BM_ClusterRunConflictFree/reference", 1),
    ("cluster-run conflict-free fast/ref",
     "BM_ClusterRunConflictFree/fast", "BM_ClusterRunConflictFree/reference", 1),
    ("cluster-step 8-core trace/ref",
     "BM_ClusterStep/int8_trace", "BM_ClusterStep/int8_slow", 1),
    ("cluster-step 8-core fast/ref",
     "BM_ClusterStep/int8_fast", "BM_ClusterStep/int8_slow", 1),
    # run() executes 1024 instructions per benchmark iteration, step() one.
    ("functional-ISS block dispatch/step",
     "BM_FunctionalCoreRunBlocks", "BM_FunctionalCoreStep", 1024),
    # Batched engine (DESIGN.md §11): identical campaigns, byte-identical
    # outcome tables, so the pair ratio is pure engine speedup. Streaming
    # campaigns are the fleet-throughput case the tier targets (>=2x);
    # one-shot injections diverge for good, the pair there only guards
    # that the batched bookkeeping never costs throughput (~1.1x).
    ("campaign throughput streaming batched/trace",
     "BM_CampaignThroughput/streaming_batched", "BM_CampaignThroughput/streaming_trace", 1),
    ("campaign throughput one-shot batched/trace",
     "BM_CampaignThroughput/oneshot_batched", "BM_CampaignThroughput/oneshot_trace", 1),
]


def load_times(path):
    # A missing, truncated or binary artifact must fail the gate with a
    # diagnosis, not a traceback (CI wires stderr to the check).
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not UTF-8 text (binary file?)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e}")
    if not isinstance(report, dict):
        sys.exit(f"{path}: not a benchmark report object")
    times = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b["cpu_time"])
    return times


def speedup(times, opt, ref, scale):
    if opt not in times or ref not in times:
        return None
    return times[ref] / (times[opt] / scale)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional speedup regression (default 0.15)")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)

    failed = False
    print(f"{'pair':45s} {'baseline':>9s} {'current':>9s} {'floor':>7s}")
    for label, opt, ref, scale in PAIRS:
        b = speedup(base, opt, ref, scale)
        c = speedup(cur, opt, ref, scale)
        if b is None:
            print(f"{label:45s}  -- not in baseline, skipped")
            continue
        if c is None:
            print(f"{label:45s}  MISSING from current report")
            failed = True
            continue
        floor = b * (1.0 - args.tolerance)
        verdict = "ok" if c >= floor else "REGRESSION"
        print(f"{label:45s} {b:8.2f}x {c:8.2f}x {floor:6.2f}x  {verdict}")
        if c < floor:
            failed = True

    if failed:
        print(f"\nFAIL: a tier speedup regressed more than "
              f"{args.tolerance:.0%} below the committed baseline.")
        return 1
    print("\nOK: all tier speedups within tolerance of the baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
